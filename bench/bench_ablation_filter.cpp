// Ablation: filtered (user-defined) queries — selection materialization
// cost vs the narrowed aggregation, against the full-table kernels.
//
// The paper's engine is built for "user-defined queries"; the common
// restriction patterns are a time window (one quarter of a crisis) and a
// country slice. This bench shows that a materialized row set amortizes:
// select once, run several aggregates over the subset.
#include "common/fixture.hpp"
#include "engine/filter.hpp"

namespace gdelt::bench {
namespace {

engine::MentionFilter QuarterWindowFilter() {
  const auto& db = Db();
  engine::MentionFilter f;
  const std::int64_t span = db.last_interval() - db.first_interval();
  f.begin_interval = db.first_interval() + span / 2;
  f.end_interval = f.begin_interval + span / 20;  // ~one quarter of 5 years
  return f;
}

void BM_SelectQuarterWindow(benchmark::State& state) {
  const auto& db = Db();
  const auto f = QuarterWindowFilter();
  for (auto _ : state) {
    auto rows = engine::SelectMentions(db, f);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectQuarterWindow);

void BM_FilteredAggregate(benchmark::State& state) {
  const auto& db = Db();
  const auto rows = engine::SelectMentions(db, QuarterWindowFilter());
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db, rows);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FilteredAggregate);

void BM_FullTableAggregate(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullTableAggregate);

void BM_SelectPublisherCountry(benchmark::State& state) {
  const auto& db = Db();
  engine::MentionFilter f;
  f.publisher_country = country::kUK;
  for (auto _ : state) {
    auto rows = engine::SelectMentions(db, f);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectPublisherCountry);

void Print() {
  const auto& db = Db();
  const auto rows = engine::SelectMentions(db, QuarterWindowFilter());
  std::printf("\n=== Ablation: user-defined (filtered) queries ===\n");
  std::printf("quarter-window selection: %zu of %zu mentions (%.1f%%); "
              "aggregates over the row set touch only that fraction.\n",
              rows.size(), db.num_mentions(),
              100.0 * static_cast<double>(rows.size()) /
                  static_cast<double>(db.num_mentions()));
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
