// Reproduces Table VII: the fractional country-cross-reporting matrix —
// the percentage of each publishing country's articles that report on
// events in each reported country.
//
// Paper shape: the USA accounts for 33-47 % of every country's articles;
// percentages are remarkably consistent across publishing countries
// ("large consensus on which countries' events are newsworthy"), with a
// modest home-country elevation on the diagonal (e.g. Australia 5.33 vs a
// ~2.8 baseline).
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_AggregatedQueryPct(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    // Percentage extraction is part of the measured query.
    double acc = 0.0;
    for (std::size_t c = 0; c < report.num_countries; ++c) {
      acc += report.Percent(country::kUSA, static_cast<CountryId>(c));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AggregatedQueryPct);

void Print() {
  const auto& db = Db();
  const auto r = engine::CountryCrossReporting(db);
  const auto reported = engine::CountriesByReportedEvents(db, 10);
  const auto publishing = engine::CountriesByPublishedArticles(db, 10);
  std::printf("\n=== Table VII: cross-reporting as %% of publisher's "
              "articles ===\n");
  std::printf("  %-13s", "");
  for (const CountryId p : publishing) {
    std::printf(" %-9.9s", std::string(CountryName(p)).c_str());
  }
  std::printf("\n");
  for (const CountryId rep : reported) {
    std::printf("  %-13.13s", std::string(CountryName(rep)).c_str());
    for (const CountryId p : publishing) {
      std::printf(" %-9.2f", r.Percent(rep, p));
    }
    std::printf("\n");
  }
  // Consistency metric: spread of the USA row across publishers.
  double lo = 100.0, hi = 0.0;
  for (const CountryId p : publishing) {
    const double pct = r.Percent(country::kUSA, p);
    lo = std::min(lo, pct);
    hi = std::max(hi, pct);
  }
  std::printf("USA row across publishers: %.1f..%.1f %% "
              "(paper: 33.3..47.4 %%)\n", lo, hi);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
