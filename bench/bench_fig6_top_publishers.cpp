// Reproduces Figure 6: quarterly article counts for the ten most
// productive news websites.
//
// Paper shape: 8 of the top 10 are regional British newspapers, most owned
// by the same media group (Newsquest); their series are correlated over
// time. The synthetic flagship UK group plays that role here.
#include "common/fixture.hpp"
#include "util/strings.hpp"

namespace gdelt::bench {
namespace {

void BM_TopPublishersQuarterly(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    const auto top = engine::TopSourcesByArticles(db, 10);
    auto series = engine::SourceArticlesPerQuarter(db, top);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TopPublishersQuarterly);

void Print() {
  const auto& db = Db();
  const auto counts = engine::ArticlesPerSource(db);
  const auto top = engine::TopSourcesByArticles(db, 10);
  const auto series = engine::SourceArticlesPerQuarter(db, top);
  std::printf("\n=== Figure 6: top-10 publishers, articles per quarter ===\n");
  int uk_count = 0;
  for (std::size_t s = 0; s < top.size(); ++s) {
    const std::string domain(db.source_domain(top[s]));
    if (EndsWith(domain, ".co.uk") || EndsWith(domain, ".uk")) ++uk_count;
    std::printf("  %c = %s (%s total)\n", static_cast<char>('A' + s),
                domain.c_str(), WithThousands(counts[top[s]]).c_str());
  }
  // Per-quarter rows, columns A..J as in the paper's legend.
  std::printf("  %-8s", "quarter");
  for (std::size_t s = 0; s < top.size(); ++s) {
    std::printf(" %6c", static_cast<char>('A' + s));
  }
  std::printf("\n");
  const std::size_t nq = series.empty() ? 0 : series[0].values.size();
  for (std::size_t q = 0; q < nq; ++q) {
    std::printf("  %-8s",
                QuarterLabel(series[0].first_quarter +
                             static_cast<QuarterId>(q))
                    .c_str());
    for (const auto& src_series : series) {
      std::printf(" %6llu",
                  static_cast<unsigned long long>(src_series.values[q]));
    }
    std::printf("\n");
  }
  std::printf("UK domains in top 10: %d (paper: 8 of 10, co-owned regional "
              "British papers)\n", uk_count);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
