// Reproduces Figure 11: number of articles with publishing delay greater
// than one day (outside the 24-hour news cycle) per quarter.
//
// Paper shape: a significant decrease over the observation window, which
// partially explains the declining average delay of Figure 10a.
#include "analysis/delay.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_SlowArticles(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto series = analysis::SlowArticlesPerQuarter(db);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SlowArticles);

void Print() {
  const auto series = analysis::SlowArticlesPerQuarter(Db());
  std::printf("\n=== Figure 11: articles with delay > 24 h per quarter ===\n");
  PrintQuarterSeries("", series);
  if (series.values.size() >= 8) {
    // Skip the first ~4 quarters (censoring spin-up: long-delay articles
    // cannot appear until the dataset is old enough) and compare against
    // the post-spin-up peak.
    std::size_t peak = 4;
    for (std::size_t i = 4; i < series.values.size(); ++i) {
      if (series.values[i] > series.values[peak]) peak = i;
    }
    const double late =
        static_cast<double>(series.values[series.values.size() - 2]);
    std::printf("late/peak(%s) ratio: %.2f (paper: significant decrease)\n",
                QuarterLabel(series.first_quarter +
                             static_cast<QuarterId>(peak))
                    .c_str(),
                static_cast<double>(series.values[peak]) > 0
                    ? late / static_cast<double>(series.values[peak])
                    : 0.0);
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
