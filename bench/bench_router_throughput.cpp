// Router throughput: requests/sec for a scattered query kind through
// gdelt_router versus the same query against a single gdelt_serve, cold
// (every sub-request renders) and cached (the backends' LRU result
// caches answer the per-shard sub-requests without touching a kernel).
//
// Everything runs in-process on ephemeral loopback ports with real
// sockets: the single-node lane is exactly bench_serve_throughput's
// path, and the router lanes add the scatter fan-out, per-shard
// round-trips and partial-aggregate merge on top. Each logical shard
// gets its own backend process-equivalent (a Server instance over the
// full bench database; the shard clamp makes partials correct
// regardless of how rows are physically placed).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "router/router.hpp"
#include "router/topology.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 50;
/// A decomposable kind: the router splits it into per-shard partials.
const char* const kRequestLine = R"({"query":"top-sources","top":5})";

using ServerList = std::vector<std::unique_ptr<serve::Server>>;

/// Starts `count` backends over the shared bench database.
ServerList StartBackends(int count, std::size_t cache_entries) {
  ServerList backends;
  for (int i = 0; i < count; ++i) {
    serve::ServerOptions options;
    options.scheduler.workers = 2;
    options.cache_entries = cache_entries;
    auto server = std::make_unique<serve::Server>(Db(), nullptr, options);
    if (!server->Start().ok()) return {};
    backends.push_back(std::move(server));
  }
  return backends;
}

/// A router fronting one single-replica shard per backend.
std::unique_ptr<router::Router> StartRouter(const ServerList& backends) {
  router::RouterOptions options;
  for (const auto& backend : backends) {
    options.topology.shards.push_back(
        {router::Endpoint{"127.0.0.1", backend->port()}});
  }
  auto r = std::make_unique<router::Router>(options);
  if (!r->Start().ok()) return nullptr;
  return r;
}

/// Sends `count` copies of the canonical request, asserting transport
/// ok; appends each round-trip's latency to `latencies_ms` when given.
void Hammer(int port, int count, std::vector<double>* latencies_ms = nullptr) {
  auto client = serve::LineClient::Connect("127.0.0.1", port);
  if (!client.ok()) return;
  for (int i = 0; i < count; ++i) {
    WallTimer timer;
    const auto response = client->RoundTrip(kRequestLine);
    if (!response.ok()) return;
    if (latencies_ms != nullptr) {
      latencies_ms->push_back(timer.ElapsedSeconds() * 1e3);
    }
  }
}

/// Wall seconds for kClients concurrent clients to push their requests
/// at `port`; fills `latencies_ms` with every round-trip latency.
double MeasureOnce(int port, std::vector<double>& latencies_ms) {
  WallTimer timer;
  std::vector<std::vector<double>> per_client(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(
        [port, &per_client, c] {
          Hammer(port, kRequestsPerClient, &per_client[c]);
        });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();
  for (auto& v : per_client) {
    latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
  }
  return wall;
}

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  auto at = static_cast<std::size_t>(p * static_cast<double>(ms.size()));
  return ms[std::min(at, ms.size() - 1)];
}

struct Lane {
  std::string name;
  double wall_seconds = 0.0;
  std::vector<double> latencies_ms;
};

/// One measured configuration: `num_shards` == 0 is the single-node
/// baseline (clients talk straight to one backend), otherwise a router
/// in front of `num_shards` backends. `cache_entries` > 0 primes the
/// backend caches with one request before measuring.
Lane RunLane(const std::string& name, int num_shards,
             std::size_t cache_entries) {
  Lane lane;
  lane.name = name;
  auto backends = StartBackends(std::max(num_shards, 1), cache_entries);
  if (backends.empty()) return lane;
  std::unique_ptr<router::Router> router;
  int port = backends.front()->port();
  if (num_shards > 0) {
    router = StartRouter(backends);
    if (router == nullptr) return lane;
    port = router->port();
  }
  if (cache_entries > 0) Hammer(port, 1);  // prime
  lane.wall_seconds = MeasureOnce(port, lane.latencies_ms);
  if (router != nullptr) router->Stop();
  for (auto& backend : backends) backend->Stop();
  return lane;
}

void Print() {
  const int total = kClients * kRequestsPerClient;
  BenchJsonWriter writer("router_throughput");

  std::vector<Lane> lanes;
  for (const bool cached : {false, true}) {
    const std::size_t cache_entries = cached ? 64 : 0;
    const char* const suffix = cached ? "cached" : "cold";
    lanes.push_back(RunLane(std::string("single_node_") + suffix,
                            /*num_shards=*/0, cache_entries));
    lanes.push_back(RunLane(std::string("router_2shard_") + suffix,
                            /*num_shards=*/2, cache_entries));
    lanes.push_back(RunLane(std::string("router_4shard_") + suffix,
                            /*num_shards=*/4, cache_entries));
  }
  for (const auto& lane : lanes) {
    writer.RecordLatencies(lane.name, kClients, lane.wall_seconds,
                           lane.latencies_ms);
  }

  std::printf("\n=== Router throughput (%d clients x %d requests, "
              "top-sources) ===\n",
              kClients, kRequestsPerClient);
  for (const auto& lane : lanes) {
    if (lane.wall_seconds <= 0.0) {
      std::printf("  %-22s: FAILED TO START\n", lane.name.c_str());
      continue;
    }
    std::printf("  %-22s: %8.1f req/s  (%.3fs total, p50 %.1fms "
                "p95 %.1fms p99 %.1fms)\n",
                lane.name.c_str(), total / lane.wall_seconds,
                lane.wall_seconds, Percentile(lane.latencies_ms, 0.50),
                Percentile(lane.latencies_ms, 0.95),
                Percentile(lane.latencies_ms, 0.99));
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
