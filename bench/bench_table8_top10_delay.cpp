// Reproduces Table VIII: publication delay statistics for the ten most
// productive news websites.
//
// Paper: every top-10 site has min 1, max 35,135 (~1 year), average 37-48
// and median 13-16 intervals — all members of the "average" speed group
// whose mean is skewed by anniversary republications.
#include "analysis/delay.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_Top10DelayStats(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto stats = analysis::PerSourceDelayStats(db);
    auto top = engine::TopSourcesByArticles(db, 10);
    benchmark::DoNotOptimize(stats);
    benchmark::DoNotOptimize(top);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Top10DelayStats);

void Print() {
  const auto& db = Db();
  const auto stats = analysis::PerSourceDelayStats(db);
  const auto top = engine::TopSourcesByArticles(db, 10);
  std::printf("\n=== Table VIII: delay statistics, top 10 publishers ===\n");
  std::printf("  %-20s %6s %8s %9s %8s\n", "Publisher", "Min", "Max",
              "Average", "Median");
  for (std::size_t s = 0; s < top.size(); ++s) {
    const auto& st = stats[top[s]];
    std::printf("  %c %-18.18s %6lld %8lld %9.0f %8lld\n",
                static_cast<char>('A' + s),
                std::string(db.source_domain(top[s])).c_str(),
                static_cast<long long>(st.min),
                static_cast<long long>(st.max), st.average,
                static_cast<long long>(st.median));
  }
  std::printf("Paper reference rows: min 1 / max 35,135 / average 37-48 / "
              "median 13-16 for every top-10 site\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
