// Reproduces Figure 5: number of articles observed by quarter.
//
// Paper shape: stable around ~55-60 M articles per quarter with a mild
// 2018-2019 decline; partial first quarter.
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_ArticlesPerQuarter(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto series = engine::ArticlesPerQuarter(db);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArticlesPerQuarter);

void Print() {
  const auto series = engine::ArticlesPerQuarter(Db());
  std::printf("\n=== Figure 5: articles per quarter ===\n");
  PrintQuarterSeries("", series);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
