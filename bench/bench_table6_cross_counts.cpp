// Reproduces Table VI: the country-cross-reporting matrix — number of
// articles each publishing country wrote about events located in each
// reported country. This is the paper's headline "single aggregated
// query" (Section VI-G).
//
// Paper shape: the matrix is asymmetric; the USA row dwarfs everything
// (188 M articles from the UK alone); the UK/USA/Australia columns carry
// almost all the volume.
#include "common/fixture.hpp"
#include "util/strings.hpp"

namespace gdelt::bench {
namespace {

void BM_AggregatedQuery(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AggregatedQuery);

void Print() {
  const auto& db = Db();
  const auto r = engine::CountryCrossReporting(db);
  const auto reported = engine::CountriesByReportedEvents(db, 10);
  const auto publishing = engine::CountriesByPublishedArticles(db, 10);
  std::printf("\n=== Table VI: country cross-reporting (article counts) ===\n");
  std::printf("  rows = reported-on country, cols = publishing country\n");
  std::printf("  %-13s", "");
  for (const CountryId p : publishing) {
    std::printf(" %-10.9s", std::string(CountryName(p)).c_str());
  }
  std::printf("\n");
  for (const CountryId rep : reported) {
    std::printf("  %-13.13s", std::string(CountryName(rep)).c_str());
    for (const CountryId p : publishing) {
      std::printf(" %-10s", WithThousands(r.At(rep, p)).c_str());
    }
    std::printf("\n");
  }
  std::printf("Paper shape: USA row dominates every column; UK and USA "
              "publish the most, Australia third.\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
