// Reproduces Figure 7: the follow-reporting matrix of the fifty most
// productive news websites (visualized as a heat map in the paper).
//
// Paper shape: a bright block of heavy follow-reporting among the co-owned
// top publishers, some coupling between those and the rest, and weak
// follow-reporting among the remaining sites. We print the block summary
// (group block mean vs cross and outside means), which is the structure
// the figure conveys.
#include "analysis/followreport.hpp"
#include "common/fixture.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

constexpr std::size_t kTop = 50;
constexpr std::size_t kBlock = 10;  // the Table IV block inside the 50

void BM_FollowReportingTop50(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(db, kTop);
  for (auto _ : state) {
    auto matrix = analysis::ComputeFollowReporting(db, top);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FollowReportingTop50);

void Print() {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(db, kTop);
  db.event_distinct_sources();  // build the shared index outside the timing
  WallTimer timer;
  const auto m = analysis::ComputeFollowReporting(db, top);
  {
    BenchJsonWriter json("fig7_follow50");
    json.Record("follow-top50", MaxThreads(), timer.ElapsedSeconds());
  }
  std::printf("\n=== Figure 7: follow-reporting, top %zu sources ===\n",
              top.size());
  // Row-block means reproduce the heat-map structure.
  double block = 0.0, cross = 0.0, outside = 0.0;
  std::size_t nb = 0, ncr = 0, no = 0;
  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = 0; j < m.n; ++j) {
      if (i == j) continue;
      const bool bi = i < kBlock;
      const bool bj = j < kBlock;
      if (bi && bj) {
        block += m.F(i, j);
        ++nb;
      } else if (bi != bj) {
        cross += m.F(i, j);
        ++ncr;
      } else {
        outside += m.F(i, j);
        ++no;
      }
    }
  }
  std::printf("  mean f within the top-10 block:   %.4f\n",
              nb ? block / static_cast<double>(nb) : 0.0);
  std::printf("  mean f block <-> rest:            %.4f\n",
              ncr ? cross / static_cast<double>(ncr) : 0.0);
  std::printf("  mean f among the rest:            %.4f\n",
              no ? outside / static_cast<double>(no) : 0.0);
  std::printf("Paper shape: heavy follow-reporting inside the co-owned "
              "block, some towards the rest, low among the rest.\n");
  // Compact 10x10-block-averaged 50x50 rendering (5x5 cells).
  std::printf("  5x5 block-mean heat map (row-major, x1000):\n");
  for (std::size_t bi = 0; bi < 5; ++bi) {
    std::printf("   ");
    for (std::size_t bj = 0; bj < 5; ++bj) {
      double sum = 0.0;
      int cnt = 0;
      for (std::size_t i = bi * 10; i < bi * 10 + 10 && i < m.n; ++i) {
        for (std::size_t j = bj * 10; j < bj * 10 + 10 && j < m.n; ++j) {
          if (i == j) continue;
          sum += m.F(i, j);
          ++cnt;
        }
      }
      std::printf(" %5.0f", cnt ? 1000.0 * sum / cnt : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
