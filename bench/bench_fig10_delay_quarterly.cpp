// Reproduces Figure 10: aggregated quarterly publishing delay — (a) the
// average, (b) the median, both in 15-minute intervals.
//
// Paper shape: the average declines visibly (especially in 2019) while
// the median stays essentially flat — the decline comes from fewer
// high-delay articles, not from faster typical reporting.
#include "analysis/delay.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_QuarterlyDelay(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto q = analysis::QuarterlyDelayStats(db);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuarterlyDelay);

void Print() {
  const auto q = analysis::QuarterlyDelayStats(Db());
  std::printf("\n=== Figure 10: quarterly publishing delay ===\n");
  std::printf("  %-8s %10s %8s\n", "quarter", "average", "median");
  for (std::size_t i = 0; i < q.average.size(); ++i) {
    std::printf("  %-8s %10.1f %8lld\n",
                QuarterLabel(q.first_quarter + static_cast<QuarterId>(i))
                    .c_str(),
                q.average[i], static_cast<long long>(q.median[i]));
  }
  if (q.average.size() >= 8) {
    // The first ~4 quarters are a censoring spin-up: year-delayed
    // republications cannot exist before the dataset is a year old (the
    // real GDELT has pre-2015 events to reference; our synthetic window
    // does not). Measure the decline from the post-spin-up peak.
    std::size_t peak = 4;
    for (std::size_t i = 4; i < q.average.size(); ++i) {
      if (q.average[i] > q.average[peak]) peak = i;
    }
    const double late_avg = q.average[q.average.size() - 2];
    const auto late_med = q.median[q.median.size() - 2];
    std::printf("average late/peak(%s): %.2f (paper: clear decline); "
                "median late-peak: %lld intervals (paper: stable)\n",
                QuarterLabel(q.first_quarter +
                             static_cast<QuarterId>(peak))
                    .c_str(),
                late_avg / q.average[peak],
                static_cast<long long>(late_med - q.median[peak]));
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
