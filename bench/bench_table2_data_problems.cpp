// Reproduces Table II: problems found during dataset analysis, and times
// the full preprocessing/conversion pass that discovers them.
//
// Paper: 53 missformatted master entries, 8 missing archives, 1 missing
// event source URL, 4 events recorded after their first article.
// The generator injects exactly these defect counts (medium preset); the
// converter must rediscover them from the raw files alone.
#include "common/fixture.hpp"
#include "convert/converter.hpp"

namespace gdelt::bench {
namespace {

convert::ConvertReport RunConversion(const std::string& out_suffix) {
  convert::ConvertOptions options;
  options.input_dir = RawDir();
  options.output_dir = DbDir() + out_suffix;
  auto report = convert::ConvertDataset(options);
  if (!report.ok()) std::abort();
  return *report;
}

void BM_FullConversion(benchmark::State& state) {
  for (auto _ : state) {
    auto report = RunConversion("_bench");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullConversion)->Unit(benchmark::kSecond)->Iterations(1);

void Print() {
  const auto report = RunConversion("_bench");
  const auto& cfg = Config();
  std::printf("\n=== Table II: Problems found during dataset analysis ===\n");
  std::printf("  %-46s %9s %9s\n", "", "injected", "found");
  std::printf("  %-46s %9u %9u\n", "Missformatted dataset master list entries",
              cfg.defect_malformed_master_entries,
              report.malformed_master_entries);
  std::printf("  %-46s %9u %9u\n", "Missing archives for dataset chunks",
              cfg.defect_missing_archives, report.missing_archives);
  std::printf("  %-46s %9u %9u\n", "Missing event source URL",
              cfg.defect_missing_source_url, report.missing_event_source_url);
  std::printf("  %-46s %9u %9u\n",
              "Event date in future vs first article",
              cfg.defect_future_event_dates, report.future_event_dates);
  std::printf("Paper reference: 53 / 8 / 1 / 4\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
