// Ablation: co-reporting matrix representations (DESIGN.md section 5).
//
// Four kernels over the same memoized event -> distinct-source index:
//   tiled        - atomic-free per-thread tiles, deterministic tile merge
//                  (the default ComputeCoReporting)
//   dense-atomic - shared dense matrix, per-pair omp atomic (pre-tiling
//                  baseline; quantifies the contention the tiles remove)
//   sparse-hash  - per-thread hash maps merged at the end
//   time-sliced  - the paper's per-quarter sparse assembly over all sources
// The paper argues that a dense representation (~1.8 GB for all 21 k
// sources) is the most efficient choice "due to the large number of
// updates"; this bench quantifies that trade-off on the top-N source
// subsets and writes machine-readable timings to BENCH_coreport_repr.json.
#include <cmath>

#include "analysis/coreport.hpp"
#include "common/fixture.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

void BM_CoReportTiled(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(
      db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = analysis::ComputeCoReporting(db, top);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportTiled)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_CoReportDenseAtomic(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(
      db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = analysis::ComputeCoReportingDenseAtomic(db, top);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportDenseAtomic)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_CoReportSparse(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(
      db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = analysis::ComputeCoReportingSparse(db, top);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportSparse)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_CoReportTimeSliced(benchmark::State& state) {
  // The paper's per-period sparse assembly, over ALL sources.
  const auto& db = Db();
  for (auto _ : state) {
    auto m = analysis::ComputeCoReportingTimeSliced(db);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportTimeSliced)->Unit(benchmark::kMillisecond);

void BM_CoReportTiledAllSources(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto m = analysis::ComputeCoReporting(db);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportTiledAllSources)->Unit(benchmark::kMillisecond);

/// Best-of-3 wall time of `fn` at `threads` OpenMP threads.
template <typename Fn>
double TimeAt(int threads, Fn&& fn) {
  SetThreads(threads);
  fn();  // warm up (and lazily build the shared index outside the timing)
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    benchmark::DoNotOptimize(fn());
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void Print() {
  const auto& db = Db();
  const int hw = MaxThreads();
  const auto top = engine::TopSourcesByArticles(db, 800);

  std::printf("\n=== Ablation: co-reporting representation ===\n");
  // Verify once that all paths agree (cheap insurance in the harness).
  {
    const auto subset = engine::TopSourcesByArticles(db, 100);
    const auto tiled = analysis::ComputeCoReporting(db, subset);
    const auto atomic = analysis::ComputeCoReportingDenseAtomic(db, subset);
    const auto sparse = analysis::ComputeCoReportingSparse(db, subset);
    analysis::TiledCoReportOptions force_sparse;
    force_sparse.dense_partials_budget_bytes = 0;
    const auto tiled_sparse =
        analysis::ComputeCoReporting(db, subset, force_sparse);
    std::printf("tiled, dense-atomic, sparse-hash paths agree: %s\n",
                (tiled.counts() == atomic.counts() &&
                 tiled.counts() == sparse.counts() &&
                 tiled.counts() == tiled_sparse.counts())
                    ? "yes"
                    : "NO (BUG)");
  }

  // Timed head-to-head on the top-800 subset, single- and multi-threaded,
  // recorded as JSON for the perf trajectory.
  BenchJsonWriter json("coreport_repr");
  double tiled_mt = 0.0, atomic_mt = 0.0, sparse_mt = 0.0;
  std::printf("top-800 subset, best of 3 (seconds):\n");
  std::printf("  %-14s %10s %10s %9s\n", "kernel", "1 thread", "max thr",
              "scaling");
  const auto report = [&](const char* name, double t1, double tn) {
    std::printf("  %-14s %10.4f %10.4f %8.2fx\n", name, t1, tn,
                tn > 0 ? t1 / tn : 0.0);
    json.Record(name, 1, t1);
    json.Record(name, hw, tn);
  };
  {
    const auto run = [&] { return analysis::ComputeCoReporting(db, top); };
    const double t1 = TimeAt(1, run);
    tiled_mt = TimeAt(hw, run);
    report("tiled", t1, tiled_mt);
  }
  {
    const auto run = [&] {
      return analysis::ComputeCoReportingDenseAtomic(db, top);
    };
    const double t1 = TimeAt(1, run);
    atomic_mt = TimeAt(hw, run);
    report("dense-atomic", t1, atomic_mt);
  }
  {
    const auto run = [&] {
      return analysis::ComputeCoReportingSparse(db, top);
    };
    const double t1 = TimeAt(1, run);
    sparse_mt = TimeAt(hw, run);
    report("sparse-hash", t1, sparse_mt);
  }
  {
    const auto run = [&] {
      return analysis::ComputeCoReportingTimeSliced(db);
    };
    const double t1 = TimeAt(1, run);
    const double tn = TimeAt(hw, run);
    report("time-sliced", t1, tn);
  }
  SetThreads(hw);
  std::printf("tiled vs dense-atomic at %d thread(s): %.2fx%s\n", hw,
              tiled_mt > 0 ? atomic_mt / tiled_mt : 0.0,
              hw == 1 ? " (single-core host: contention invisible)" : "");
  std::printf("tiled is fastest multi-threaded variant: %s\n",
              (tiled_mt <= atomic_mt && tiled_mt <= sparse_mt) ? "yes" : "NO");

  const auto sliced = analysis::ComputeCoReportingTimeSliced(db);
  std::printf("time-sliced sparse assembly over all %u sources: %zu nnz "
              "(%.2f%% of dense cells; the paper's per-period plan)\n",
              db.num_sources(), sliced.nnz(),
              100.0 * static_cast<double>(sliced.nnz()) /
                  (static_cast<double>(db.num_sources()) * db.num_sources()));
  std::printf("dense matrix for all %u sources would hold %zu cells "
              "(%zu MiB at u32); the paper's 20,996 sources -> 1.8 GiB "
              "as stated in Section VI-B.\n",
              db.num_sources(),
              static_cast<std::size_t>(db.num_sources()) * db.num_sources(),
              static_cast<std::size_t>(db.num_sources()) * db.num_sources() *
                  4 / (1024 * 1024));
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
