// Ablation: dense-matrix vs sparse-hash accumulation for the co-reporting
// matrix (DESIGN.md section 5).
//
// The paper argues that a dense representation (~1.8 GB for all 21 k
// sources) is the most efficient choice "due to the large number of
// updates", with sparse per-period assembly as the scalable alternative.
// This bench quantifies that trade-off on the top-N source subsets.
#include "analysis/coreport.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_CoReportDense(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(
      db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = analysis::ComputeCoReporting(db, top);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportDense)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_CoReportSparse(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(
      db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = analysis::ComputeCoReportingSparse(db, top);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportSparse)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_CoReportTimeSliced(benchmark::State& state) {
  // The paper's per-period sparse assembly, over ALL sources.
  const auto& db = Db();
  for (auto _ : state) {
    auto m = analysis::ComputeCoReportingTimeSliced(db);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportTimeSliced)->Unit(benchmark::kMillisecond);

void BM_CoReportDenseAllSources(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto m = analysis::ComputeCoReporting(db);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoReportDenseAllSources)->Unit(benchmark::kMillisecond);

void Print() {
  const auto& db = Db();
  // Verify once that both paths agree (cheap insurance in the harness).
  const auto top = engine::TopSourcesByArticles(db, 100);
  const auto dense = analysis::ComputeCoReporting(db, top);
  const auto sparse = analysis::ComputeCoReportingSparse(db, top);
  std::printf("\n=== Ablation: co-reporting accumulation ===\n");
  std::printf("dense and sparse paths agree: %s\n",
              dense.counts() == sparse.counts() ? "yes" : "NO (BUG)");
  const auto sliced = analysis::ComputeCoReportingTimeSliced(db);
  std::printf("time-sliced sparse assembly over all %u sources: %zu nnz "
              "(%.2f%% of dense cells; the paper's per-period plan)\n",
              db.num_sources(), sliced.nnz(),
              100.0 * static_cast<double>(sliced.nnz()) /
                  (static_cast<double>(db.num_sources()) * db.num_sources()));
  std::printf("dense matrix for all %u sources would hold %zu cells "
              "(%zu MiB at u32); the paper's 20,996 sources -> 1.8 GiB "
              "as stated in Section VI-B.\n",
              db.num_sources(),
              static_cast<std::size_t>(db.num_sources()) * db.num_sources(),
              static_cast<std::size_t>(db.num_sources()) * db.num_sources() *
                  4 / (1024 * 1024));
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
