// Reproduces Figure 8: the countries-cross-reporting matrix for the fifty
// most reported-on and most publishing countries, log scale.
//
// Paper shape: countries outside the Top 10 contribute little to global
// English-language news, but the first row (USA) is bright across all 50
// columns — everyone reports on the US.
#include <cmath>

#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

constexpr std::size_t kTop = 50;

void BM_Cross50(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    auto reported = engine::CountriesByReportedEvents(db, kTop);
    auto publishing = engine::CountriesByPublishedArticles(db, kTop);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(reported);
    benchmark::DoNotOptimize(publishing);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Cross50);

void Print() {
  const auto& db = Db();
  const auto r = engine::CountryCrossReporting(db);
  const auto reported = engine::CountriesByReportedEvents(db, kTop);
  const auto publishing = engine::CountriesByPublishedArticles(db, kTop);
  std::printf("\n=== Figure 8: 50x50 cross-reporting, log10(articles) ===\n");
  std::printf("  rows = reported-on (by events), cols = publishing "
              "(by articles); '.' = 0\n");
  for (std::size_t i = 0; i < reported.size(); ++i) {
    std::printf("  %-13.13s",
                std::string(CountryName(reported[i])).c_str());
    for (std::size_t j = 0; j < publishing.size(); ++j) {
      const std::uint64_t v = r.At(reported[i], publishing[j]);
      if (v == 0) {
        std::printf(".");
      } else {
        const int mag = static_cast<int>(std::log10(static_cast<double>(v)));
        std::printf("%d", std::min(mag, 9));
      }
    }
    std::printf("\n");
  }
  // The bright-first-row property.
  std::size_t nonzero_in_usa_row = 0;
  for (std::size_t j = 0; j < publishing.size(); ++j) {
    if (r.At(country::kUSA, publishing[j]) > 0) ++nonzero_in_usa_row;
  }
  std::printf("publishers reporting on the USA: %zu of %zu "
              "(paper: almost all 50)\n", nonzero_in_usa_row,
              publishing.size());
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
