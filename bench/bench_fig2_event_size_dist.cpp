// Reproduces Figure 2: number of events with a given number of articles.
//
// Paper shape: a power law over ~3.5 decades with a slight deviation from
// the pure line around the middle of the range (unlike Lu et al., all
// sources and articles are counted). We print log2-binned counts and the
// MLE exponent.
#include <cmath>

#include "analysis/distributions.hpp"
#include "common/fixture.hpp"
#include "util/strings.hpp"

namespace gdelt::bench {
namespace {

void BM_EventSizeDistribution(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto hist = analysis::EventSizeDistribution(db);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_events()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventSizeDistribution);

void BM_PowerLawFit(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    const double alpha = analysis::EventSizePowerLawAlpha(db, 2);
    benchmark::DoNotOptimize(alpha);
  }
}
BENCHMARK(BM_PowerLawFit);

void Print() {
  const auto& db = Db();
  const auto hist = analysis::EventSizeDistribution(db);
  std::printf("\n=== Figure 2: events per article count (log2 bins) ===\n");
  std::printf("  %-22s %s\n", "articles per event", "events");
  for (std::size_t lo = 1; lo < hist.size(); lo *= 2) {
    const std::size_t hi = std::min(hist.size(), lo * 2);
    std::uint64_t events = 0;
    for (std::size_t k = lo; k < hi; ++k) events += hist[k];
    std::printf("  [%6zu, %6zu)%7s %s\n", lo, lo * 2, "",
                WithThousands(events).c_str());
  }
  std::printf("MLE power-law alpha (xmin=2): %.2f\n",
              analysis::EventSizePowerLawAlpha(db, 2));
  std::printf("Paper shape: straight power-law decay across the full range "
              "with a mild mid-range bump; configured alpha = %.2f\n",
              Config().event_popularity_alpha);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
