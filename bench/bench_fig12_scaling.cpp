// Reproduces Figure 12: OpenMP strong scaling of the aggregated query
// execution engine.
//
// Paper: the single aggregated query behind Tables V-VII took 344 s
// single-threaded and 43 s with OpenMP on the 64-core EPYC node (8x),
// with scaling hampered by single-node I/O. We run the same aggregated
// query (country cross-reporting + country co-reporting, one pass each)
// at 1, 2, 4, ... threads on whatever cores this host offers and report
// the speedup curve. On a single-core host the curve is flat — the shape
// statement is then vacuous but the harness still exercises the code.
#include "analysis/country.hpp"
#include "common/fixture.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

/// The paper's "single aggregated query": both country matrices in one go.
double RunAggregatedQuery(const engine::Database& db) {
  const auto cross = engine::CountryCrossReporting(db);
  const auto co = analysis::ComputeCountryCoReporting(db);
  // Return something data-dependent so nothing is optimized away.
  return static_cast<double>(cross.At(country::kUSA, country::kUK)) +
         co.Jaccard(country::kUK, country::kUSA);
}

void BM_AggregatedQueryThreads(benchmark::State& state) {
  const auto& db = Db();
  SetThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAggregatedQuery(db));
  }
  SetThreads(MaxThreads());
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AggregatedQueryThreads)
    ->RangeMultiplier(2)
    ->Range(1, std::max(1, gdelt::MaxThreads()))
    ->Unit(benchmark::kMillisecond);

void Print() {
  const auto& db = Db();
  const int hw = MaxThreads();
  std::printf("\n=== Figure 12: aggregated-query OpenMP scaling ===\n");
  std::printf("  %-10s %12s %9s\n", "threads", "seconds", "speedup");
  BenchJsonWriter json("fig12_scaling");
  double t1 = 0.0;
  for (int t = 1; t <= hw; t *= 2) {
    SetThreads(t);
    // Warm once, then take the best of 3 runs.
    RunAggregatedQuery(db);
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      benchmark::DoNotOptimize(RunAggregatedQuery(db));
      best = std::min(best, timer.ElapsedSeconds());
    }
    if (t == 1) t1 = best;
    json.Record("aggregated-query", t, best);
    std::printf("  %-10d %12.4f %8.2fx\n", t, best,
                t1 > 0 ? t1 / best : 0.0);
  }
  SetThreads(hw);
  std::printf("Paper reference: 344 s at 1 thread -> 43 s with OpenMP "
              "(8.0x on 64 cores, I/O-bound tail). Host has %d hardware "
              "thread(s).\n", hw);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
