// Reproduces Figure 3: number of sources active during each quarter.
//
// Paper shape: only about one third of the ~21 k tracked sources are
// active in any given quarter; the series is stable with a slight dip in
// 2018-2019.
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_ActiveSourcesPerQuarter(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto series = engine::ActiveSourcesPerQuarter(db);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActiveSourcesPerQuarter);

void Print() {
  const auto& db = Db();
  const auto series = engine::ActiveSourcesPerQuarter(db);
  std::printf("\n=== Figure 3: active sources per quarter ===\n");
  PrintQuarterSeries("", series);
  double sum = 0.0;
  for (const auto v : series.values) sum += static_cast<double>(v);
  const double avg_fraction =
      series.values.empty()
          ? 0.0
          : sum / static_cast<double>(series.values.size()) /
                static_cast<double>(db.num_sources());
  std::printf("average active fraction: %.2f (paper: ~1/3 of sources)\n",
              avg_fraction);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
