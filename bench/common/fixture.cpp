#include "common/fixture.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "convert/converter.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/file.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

struct Env {
  gen::GeneratorConfig config;
  std::string raw_dir;
  std::string db_dir;
};

const Env& GetEnv() {
  static const Env env = [] {
    Env e;
    const char* preset_env = std::getenv("GDELT_BENCH_PRESET");
    const std::string preset = preset_env ? preset_env : "medium";
    if (preset == "tiny") {
      e.config = gen::GeneratorConfig::Tiny();
    } else if (preset == "small") {
      e.config = gen::GeneratorConfig::Small();
    } else {
      e.config = gen::GeneratorConfig::Medium();
    }
    if (const char* seed_env = std::getenv("GDELT_BENCH_SEED")) {
      e.config.seed = std::strtoull(seed_env, nullptr, 10);
    }
    const char* tmp = std::getenv("TMPDIR");
    const std::string base = std::string(tmp ? tmp : "/tmp") +
                             "/gdelt_bench_cache_" + preset + "_s" +
                             std::to_string(e.config.seed);
    e.raw_dir = base + "/raw";
    e.db_dir = base + "/db";

    if (!FileExists(e.db_dir + "/mentions.tbl")) {
      std::fprintf(stderr,
                   "[bench fixture] building %s dataset into %s ...\n",
                   preset.c_str(), base.c_str());
      WallTimer timer;
      const gen::RawDataset dataset = gen::GenerateDataset(e.config);
      auto emitted = gen::EmitDataset(dataset, e.config, e.raw_dir);
      if (!emitted.ok()) {
        std::fprintf(stderr, "generate failed: %s\n",
                     emitted.status().ToString().c_str());
        std::abort();
      }
      convert::ConvertOptions options;
      options.input_dir = e.raw_dir;
      options.output_dir = e.db_dir;
      auto report = convert::ConvertDataset(options);
      if (!report.ok()) {
        std::fprintf(stderr, "convert failed: %s\n",
                     report.status().ToString().c_str());
        std::abort();
      }
      std::fprintf(stderr, "[bench fixture] ready in %.1fs\n",
                   timer.ElapsedSeconds());
    }
    return e;
  }();
  return env;
}

}  // namespace

const gen::GeneratorConfig& Config() { return GetEnv().config; }
const std::string& RawDir() { return GetEnv().raw_dir; }
const std::string& DbDir() { return GetEnv().db_dir; }

const engine::Database& Db() {
  static const engine::Database db = [] {
    auto loaded = engine::Database::Load(DbDir());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return std::move(*loaded);
  }();
  return db;
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : name_(std::move(bench_name)) {}

BenchJsonWriter::~BenchJsonWriter() {
  if (!written_ && !entries_.empty()) Flush();
}

void BenchJsonWriter::Record(const std::string& kernel, int threads,
                             double wall_seconds) {
  entries_.push_back({kernel, threads, wall_seconds});
  written_ = false;
}

void BenchJsonWriter::RecordLatencies(const std::string& kernel, int threads,
                                      double wall_seconds,
                                      std::vector<double> latencies_ms) {
  Entry entry{kernel, threads, wall_seconds};
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    // Nearest-rank percentile: value at ceil(p * n) - 1.
    const auto rank = [&](double p) {
      const auto n = static_cast<double>(latencies_ms.size());
      auto at = static_cast<std::size_t>(std::ceil(p * n));
      at = at > 0 ? at - 1 : 0;
      return latencies_ms[std::min(at, latencies_ms.size() - 1)];
    };
    entry.has_percentiles = true;
    entry.p50_ms = rank(0.50);
    entry.p95_ms = rank(0.95);
    entry.p99_ms = rank(0.99);
  }
  entries_.push_back(entry);
  written_ = false;
}

std::string BenchJsonWriter::Flush() {
  const char* dir_env = std::getenv("GDELT_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir_env ? dir_env : ".") + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "[bench json] cannot write %s\n", path.c_str());
    return path;
  }
  const char* preset_env = std::getenv("GDELT_BENCH_PRESET");
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"preset\": \"%s\",\n"
               "  \"seed\": %llu,\n  \"entries\": [\n",
               name_.c_str(), preset_env ? preset_env : "medium",
               static_cast<unsigned long long>(Config().seed));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::fprintf(f, "    {\"kernel\": \"%s\", \"threads\": %d, "
                 "\"wall_s\": %.6f",
                 entries_[i].kernel.c_str(), entries_[i].threads,
                 entries_[i].wall_seconds);
    if (entries_[i].has_percentiles) {
      std::fprintf(f,
                   ", \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f",
                   entries_[i].p50_ms, entries_[i].p95_ms, entries_[i].p99_ms);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench json] wrote %s (%zu entries)\n", path.c_str(),
               entries_.size());
  written_ = true;
  return path;
}

void PrintQuarterSeries(const char* title,
                        const engine::QuarterSeries& series) {
  std::printf("%s\n", title);
  for (std::size_t q = 0; q < series.values.size(); ++q) {
    std::printf("  %s  %s\n",
                QuarterLabel(series.first_quarter +
                             static_cast<QuarterId>(q))
                    .c_str(),
                WithThousands(series.values[q]).c_str());
  }
}

void PrintCount(const char* label, std::uint64_t value) {
  std::printf("  %-42s %s\n", label, WithThousands(value).c_str());
}

}  // namespace gdelt::bench
