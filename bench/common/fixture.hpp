// Shared environment for the reproduction benches.
//
// Every bench binary works against the same deterministic synthetic GDELT
// dataset: generated once into a per-preset cache directory, converted to
// the binary format once, then loaded by each binary. Set
// GDELT_BENCH_PRESET=tiny|small|medium (default: medium, the paper's full
// 2015-02-18..2019-12-31 window at 1/10 source scale) and GDELT_BENCH_SEED
// to vary it.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "gen/config.hpp"

namespace gdelt::bench {

/// The generator configuration selected via environment.
const gen::GeneratorConfig& Config();

/// Directory with the raw chunk archives (generated on first use).
const std::string& RawDir();

/// Directory with the converted binary database.
const std::string& DbDir();

/// The loaded, indexed database (loaded on first use).
const engine::Database& Db();

/// Machine-readable perf records, so future PRs have a trajectory to
/// compare against. Collects (kernel variant, threads, wall seconds)
/// entries and writes them as BENCH_<name>.json into the directory named
/// by GDELT_BENCH_JSON_DIR (default: current directory). The file holds
/// one JSON object: {"bench", "preset", "seed", "entries": [...]}.
class BenchJsonWriter {
 public:
  /// `bench_name` becomes the file stem: BENCH_<bench_name>.json.
  explicit BenchJsonWriter(std::string bench_name);
  /// Writes the file (no-op if Record was never called).
  ~BenchJsonWriter();

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  /// Adds one timing record.
  void Record(const std::string& kernel, int threads, double wall_seconds);

  /// Adds one timing record with per-request latency percentiles
  /// computed from `latencies_ms` (sorted internally; empty = no
  /// percentile fields). The JSON entry gains p50_ms/p95_ms/p99_ms.
  void RecordLatencies(const std::string& kernel, int threads,
                       double wall_seconds, std::vector<double> latencies_ms);

  /// Writes BENCH_<name>.json now; returns the path written.
  std::string Flush();

 private:
  struct Entry {
    std::string kernel;
    int threads;
    double wall_seconds;
    bool has_percentiles = false;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
  };
  std::string name_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

/// Prints a per-quarter series in the paper's row format.
void PrintQuarterSeries(const char* title, const engine::QuarterSeries& s);

/// Prints "label: value" with thousands separators.
void PrintCount(const char* label, std::uint64_t value);

/// Standard main: run registered benchmarks, then print the reproduction.
#define GDELT_BENCH_MAIN(print_fn)                                  \
  int main(int argc, char** argv) {                                 \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    print_fn();                                                     \
    return 0;                                                       \
  }

}  // namespace gdelt::bench
