// Reproduces Table III: the ten most reported events.
//
// Paper: mention counts from 5,234 (2016 Orlando nightclub shooting) down
// to 3,984, a smooth falloff; almost all located in the USA. The
// generator plants ten "mega events" with graded coverage in the same
// spirit.
#include "common/fixture.hpp"
#include "util/strings.hpp"

namespace gdelt::bench {
namespace {

void BM_TopReportedEvents(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto top = engine::TopReportedEvents(db, 10);
    benchmark::DoNotOptimize(top);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_events()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TopReportedEvents);

void Print() {
  const auto& db = Db();
  const auto top = engine::TopReportedEvents(db, 10);
  std::printf("\n=== Table III: the ten most reported events ===\n");
  std::printf("  %-9s %-10s %s\n", "Mentions", "Location", "Event source URL");
  const auto countries = db.event_country();
  for (const auto& ev : top) {
    const std::uint16_t c = countries[ev.event_row];
    std::printf("  %-9s %-10s %s\n", WithThousands(ev.articles).c_str(),
                c == kNoCountry
                    ? "-"
                    : std::string(CountryName(static_cast<CountryId>(c)))
                          .c_str(),
                std::string(db.event_source_url(ev.event_row)).c_str());
  }
  const double falloff = top.empty() || top.front().articles == 0
                             ? 0.0
                             : static_cast<double>(top.back().articles) /
                                   static_cast<double>(top.front().articles);
  std::printf("rank-10/rank-1 ratio: %.2f (paper: 3984/5234 = 0.76); "
              "locations mostly USA as in the paper\n", falloff);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
