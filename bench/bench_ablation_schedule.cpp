// Ablation: OpenMP scheduling policy (DESIGN.md section 5).
//
// Two kernels: a uniform per-mention scan (per-source counting) and a
// skewed per-event kernel whose work follows the article-count power law.
// Static scheduling wins on the uniform scan; dynamic/guided pay off on
// the skewed kernel at high thread counts.
#include "common/fixture.hpp"
#include "parallel/parallel.hpp"

namespace gdelt::bench {
namespace {

void BM_UniformScanSchedule(benchmark::State& state) {
  const auto& db = Db();
  const auto schedule = static_cast<Schedule>(state.range(0));
  for (auto _ : state) {
    auto counts = engine::ArticlesPerSource(db, schedule);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniformScanSchedule)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Arg(static_cast<int>(Schedule::kGuided));

void BM_SkewedEventKernelSchedule(benchmark::State& state) {
  const auto& db = Db();
  const auto schedule = static_cast<Schedule>(state.range(0));
  const auto src = db.mention_source_id();
  for (auto _ : state) {
    // Per-event work proportional to its article count (power-law skew).
    std::vector<std::uint64_t> acc(db.num_sources(), 0);
    ParallelFor(
        db.num_events(),
        [&](std::size_t e) {
          for (const std::uint64_t row :
               db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e))) {
            std::uint64_t& slot = acc[src[row]];
#pragma omp atomic
            ++slot;
          }
        },
        schedule);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkewedEventKernelSchedule)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Arg(static_cast<int>(Schedule::kGuided));

void Print() {
  std::printf("\n=== Ablation: OpenMP schedule ===\n");
  std::printf("arg 0 = static, 1 = dynamic(64), 2 = guided.\n"
              "Uniform scans favour static; the power-law-skewed per-event "
              "kernel favours dynamic/guided once thread counts grow.\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
