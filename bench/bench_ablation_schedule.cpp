// Ablation: OpenMP scheduling policy (DESIGN.md section 5) and the
// morsel-pool migration (section 5c).
//
// Two kernels: a uniform per-mention scan (per-source counting) and a
// skewed per-event kernel whose work follows the article-count power law.
// Static scheduling wins on the uniform scan; dynamic/guided pay off on
// the skewed kernel at high thread counts. The Print() section compares
// OpenMP teams against the shared work-stealing pool and sweeps the
// morsel size (GDELT_MORSEL_ROWS in-process), one JSON record per
// configuration.
#include <algorithm>

#include "analysis/firstreport.hpp"
#include "common/fixture.hpp"
#include "parallel/morsel.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

void BM_UniformScanSchedule(benchmark::State& state) {
  const auto& db = Db();
  const auto schedule = static_cast<Schedule>(state.range(0));
  for (auto _ : state) {
    auto counts = engine::ArticlesPerSource(db, schedule);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniformScanSchedule)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Arg(static_cast<int>(Schedule::kGuided));

void BM_SkewedEventKernelSchedule(benchmark::State& state) {
  const auto& db = Db();
  const auto schedule = static_cast<Schedule>(state.range(0));
  const auto src = db.mention_source_id();
  for (auto _ : state) {
    // Per-event work proportional to its article count (power-law skew).
    std::vector<std::uint64_t> acc(db.num_sources(), 0);
    ParallelFor(
        db.num_events(),
        [&](std::size_t e) {
          for (const std::uint64_t row :
               db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e))) {
            std::uint64_t& slot = acc[src[row]];
#pragma omp atomic
            ++slot;
          }
        },
        schedule);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkewedEventKernelSchedule)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Arg(static_cast<int>(Schedule::kGuided));

/// Wall seconds of `body`, best of `reps` runs.
template <typename Body>
double BestOf(int reps, Body&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    body();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void Print() {
  std::printf("\n=== Ablation: OpenMP schedule ===\n");
  std::printf("arg 0 = static, 1 = dynamic(64), 2 = guided.\n"
              "Uniform scans favour static; the power-law-skewed per-event "
              "kernel favours dynamic/guided once thread counts grow.\n");

  // Backend ablation on a real skewed kernel (first-reports: per-event
  // work follows the article-count power law), then the morsel-size
  // sweep on the pool backend. One JSON record per configuration.
  const auto& db = Db();
  BenchJsonWriter writer("ablation_schedule");
  constexpr int kReps = 3;
  const int threads = MaxThreads();

  const double omp_s = BestOf(kReps, [&] {
    auto stats = analysis::ComputeFirstReports(
        db, /*histogram_bins=*/18, parallel::Backend::kOpenMp);
    benchmark::DoNotOptimize(stats);
  });
  writer.Record("first_reports_openmp_team", threads, omp_s);

  const double pool_s = BestOf(kReps, [&] {
    auto stats = analysis::ComputeFirstReports(
        db, /*histogram_bins=*/18, parallel::Backend::kMorselPool);
    benchmark::DoNotOptimize(stats);
  });
  writer.Record("first_reports_morsel_pool", threads, pool_s);

  std::printf("\nfirst-reports backend: openmp %7.3f ms, morsel pool "
              "%7.3f ms (%.2fx)\n",
              omp_s * 1e3, pool_s * 1e3, omp_s / pool_s);

  std::printf("morsel-size sweep (first-reports on the pool):\n");
  for (const std::size_t morsel_rows :
       {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
        std::size_t{16384}, std::size_t{65536}}) {
    parallel::SetMorselRows(morsel_rows);
    const double sweep_s = BestOf(kReps, [&] {
      auto stats = analysis::ComputeFirstReports(
          db, /*histogram_bins=*/18, parallel::Backend::kMorselPool);
      benchmark::DoNotOptimize(stats);
    });
    writer.Record("first_reports_morsel_" + std::to_string(morsel_rows),
                  threads, sweep_s);
    std::printf("  %7zu rows/morsel: %8.3f ms\n", morsel_rows,
                sweep_s * 1e3);
  }
  parallel::SetMorselRows(0);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
