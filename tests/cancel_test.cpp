// Unit tests for util::CancelToken: latch semantics (first reason wins),
// lazy deadline expiry, and the null-safe Cancelled() helper the kernels
// poll through.
#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace gdelt::util {
namespace {

using std::chrono::steady_clock;

TEST(CancelTokenTest, FreshTokenIsNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.Poll());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelTokenTest, CancelLatchesReason) {
  CancelToken token;
  token.Cancel(CancelReason::kDisconnect);
  EXPECT_TRUE(token.Poll());
  EXPECT_EQ(token.reason(), CancelReason::kDisconnect);
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  token.Cancel(CancelReason::kRouter);
  token.Cancel(CancelReason::kDisconnect);
  EXPECT_EQ(token.reason(), CancelReason::kRouter);
}

TEST(CancelTokenTest, ExplicitCancelBeatsLaterDeadlineExpiry) {
  CancelToken token;
  token.Cancel(CancelReason::kDisconnect);
  token.ArmDeadline(steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(token.Poll());
  // The expired deadline must not overwrite the already-latched reason.
  EXPECT_EQ(token.reason(), CancelReason::kDisconnect);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotFire) {
  CancelToken token;
  token.ArmDeadline(steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(token.Poll());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelTokenTest, PastDeadlineLatchesOnPoll) {
  CancelToken token;
  token.ArmDeadline(steady_clock::now() - std::chrono::milliseconds(1));
  // reason() alone does not reflect expiry — Poll() performs the latch.
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_TRUE(token.Poll());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  // And it stays latched.
  EXPECT_TRUE(token.Poll());
}

TEST(CancelTokenTest, DeadlineExpiresWhileRunning) {
  CancelToken token;
  token.ArmDeadline(steady_clock::now() + std::chrono::milliseconds(20));
  EXPECT_FALSE(token.Poll());
  const auto give_up = steady_clock::now() + std::chrono::seconds(10);
  while (!token.Poll() && steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.Poll());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancelTokenTest, NullSafeHelper) {
  EXPECT_FALSE(Cancelled(nullptr));
  CancelToken token;
  EXPECT_FALSE(Cancelled(&token));
  token.Cancel(CancelReason::kRouter);
  EXPECT_TRUE(Cancelled(&token));
}

TEST(CancelTokenTest, ConcurrentCancelAndPollAgree) {
  // Many pollers racing one canceller: every poller eventually observes
  // the cancellation and they all agree on the reason.
  CancelToken token;
  constexpr int kPollers = 4;
  std::vector<std::thread> pollers;
  std::atomic<int> observed{0};
  for (int i = 0; i < kPollers; ++i) {
    pollers.emplace_back([&token, &observed] {
      while (!token.Poll()) {
        std::this_thread::yield();
      }
      if (token.reason() == CancelReason::kRouter) observed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  token.Cancel(CancelReason::kRouter);
  for (auto& t : pollers) t.join();
  EXPECT_EQ(observed.load(), kPollers);
}

}  // namespace
}  // namespace gdelt::util
