// Golden equivalence suite for the co-reporting kernel family.
//
// The tiled kernel (default), the shared-matrix atomic baseline, the
// per-thread hash kernel, and the paper's time-sliced sparse assembly must
// all produce bitwise-identical count matrices — on generator data, for
// subset and full-source selections, at 1 and N threads, and on both the
// dense and forced-sparse flavors of the tiled kernel.
#include "analysis/coreport.hpp"

#include <gtest/gtest.h>

#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "graph/matrix.hpp"
#include "parallel/parallel.hpp"
#include "test_util.hpp"

namespace gdelt::analysis {
namespace {

using ::gdelt::testing::TempDir;

/// Converts a Tiny generated dataset once for the whole suite.
class CoReportEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("coreport_equiv");
    auto cfg = gen::GeneratorConfig::Tiny();
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new engine::Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dirs_;
  }

  /// Asserts every kernel produces the same counts for one selection.
  static void ExpectAllKernelsAgree(std::span<const std::uint32_t> subset) {
    const auto tiled = ComputeCoReporting(*db_, subset);
    const auto atomic = ComputeCoReportingDenseAtomic(*db_, subset);
    const auto sparse = ComputeCoReportingSparse(*db_, subset);
    TiledCoReportOptions force_sparse;
    force_sparse.dense_partials_budget_bytes = 0;
    const auto tiled_sparse = ComputeCoReporting(*db_, subset, force_sparse);
    EXPECT_EQ(tiled.counts(), atomic.counts());
    EXPECT_EQ(tiled.counts(), sparse.counts());
    EXPECT_EQ(tiled.counts(), tiled_sparse.counts());
  }

  static inline TempDir* dirs_ = nullptr;
  static inline engine::Database* db_ = nullptr;
};

TEST_F(CoReportEquivalenceTest, SubsetsOfSeveralSizes) {
  for (const std::size_t k : {1u, 3u, 10u, 50u}) {
    SCOPED_TRACE("top-" + std::to_string(k));
    const auto top = engine::TopSourcesByArticles(*db_, k);
    ExpectAllKernelsAgree(top);
  }
}

TEST_F(CoReportEquivalenceTest, AllSources) {
  ExpectAllKernelsAgree({});
}

TEST_F(CoReportEquivalenceTest, SingleVsManyThreads) {
  const auto top = engine::TopSourcesByArticles(*db_, 20);
  const int hw = MaxThreads();
  SetThreads(1);
  const auto serial_subset = ComputeCoReporting(*db_, top);
  const auto serial_full = ComputeCoReporting(*db_);
  SetThreads(hw);
  const auto parallel_subset = ComputeCoReporting(*db_, top);
  const auto parallel_full = ComputeCoReporting(*db_);
  EXPECT_EQ(serial_subset.counts(), parallel_subset.counts());
  EXPECT_EQ(serial_full.counts(), parallel_full.counts());
  // The atomic baseline agrees at both ends too.
  SetThreads(1);
  const auto atomic_serial = ComputeCoReportingDenseAtomic(*db_, top);
  SetThreads(hw);
  EXPECT_EQ(serial_subset.counts(), atomic_serial.counts());
}

TEST_F(CoReportEquivalenceTest, TiledSparseFlavorAtManyTileWidths) {
  const auto top = engine::TopSourcesByArticles(*db_, 30);
  const auto reference = ComputeCoReportingDenseAtomic(*db_, top);
  for (const std::size_t tile : {1u, 7u, 64u, 100000u}) {
    SCOPED_TRACE("tile_elems=" + std::to_string(tile));
    TiledCoReportOptions options;
    options.dense_partials_budget_bytes = 0;  // force the sparse flavor
    options.tile_elems = tile;
    const auto tiled = ComputeCoReporting(*db_, top, options);
    EXPECT_EQ(reference.counts(), tiled.counts());
  }
}

TEST_F(CoReportEquivalenceTest, TimeSlicedMatchesTiled) {
  const auto tiled = ComputeCoReporting(*db_);
  const auto sliced = ComputeCoReportingTimeSliced(*db_);
  const auto as_dense = graph::SparseToDense(sliced);
  ASSERT_EQ(as_dense.rows(), tiled.size());
  for (std::size_t i = 0; i < tiled.size(); ++i) {
    for (std::size_t j = 0; j < tiled.size(); ++j) {
      ASSERT_DOUBLE_EQ(as_dense.At(i, j),
                       static_cast<double>(tiled.PairCount(i, j)))
          << i << "," << j;
    }
  }
}

TEST_F(CoReportEquivalenceTest, RepeatedInvocationsAreBitwiseStable) {
  // The memoized index is built once; repeated queries must not drift.
  const auto top = engine::TopSourcesByArticles(*db_, 10);
  const auto first = ComputeCoReporting(*db_, top);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(first.counts(), ComputeCoReporting(*db_, top).counts());
  }
}

}  // namespace
}  // namespace gdelt::analysis
