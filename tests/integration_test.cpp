// End-to-end pipeline test: generate -> emit -> convert -> load -> analyze,
// cross-checking every engine/analysis result against brute-force
// references computed directly from the generator's in-memory records.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/followreport.hpp"
#include "analysis/stats.hpp"
#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace gdelt {
namespace {

using ::gdelt::testing::TempDir;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("pipeline");
    cfg_ = gen::GeneratorConfig::Tiny();
    // No missing archives so converter totals exactly equal ground truth.
    cfg_.defect_missing_archives = 0;
    dataset_ = new gen::RawDataset(gen::GenerateDataset(cfg_));
    ASSERT_TRUE(
        gen::EmitDataset(*dataset_, cfg_, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    auto report = convert::ConvertDataset(options);
    ASSERT_TRUE(report.ok());
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new engine::Database(std::move(*db));

    // Dictionary id of each world source (only sources with articles).
    world_to_dict_.assign(dataset_->world.sources.size(), UINT32_MAX);
    for (std::size_t i = 0; i < dataset_->world.sources.size(); ++i) {
      if (const auto id =
              db_->sources().Find(dataset_->world.sources[i].domain)) {
        world_to_dict_[i] = *id;
      }
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dataset_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline gen::GeneratorConfig cfg_;
  static inline gen::RawDataset* dataset_ = nullptr;
  static inline engine::Database* db_ = nullptr;
  static inline std::vector<std::uint32_t> world_to_dict_;
};

TEST_F(PipelineTest, TableOneStatisticsMatchTruth) {
  const auto stats = analysis::ComputeDatasetStatistics(*db_);
  EXPECT_EQ(stats.events, dataset_->truth.num_events);
  EXPECT_EQ(stats.articles, dataset_->truth.num_mentions);
  EXPECT_EQ(stats.min_articles_per_event,
            dataset_->truth.min_articles_per_event);
  EXPECT_EQ(stats.max_articles_per_event,
            dataset_->truth.max_articles_per_event);
  EXPECT_NEAR(stats.weighted_avg_articles_per_event,
              static_cast<double>(dataset_->truth.num_mentions) /
                  static_cast<double>(dataset_->truth.num_events),
              1e-12);
}

TEST_F(PipelineTest, EventSizeDistributionMatchesBruteForce) {
  std::map<std::uint32_t, std::uint64_t> expected;
  for (const auto& ev : dataset_->events) ++expected[ev.num_articles];
  const auto hist = analysis::EventSizeDistribution(*db_);
  for (std::size_t k = 1; k < hist.size(); ++k) {
    const auto it = expected.find(static_cast<std::uint32_t>(k));
    const std::uint64_t want = it == expected.end() ? 0 : it->second;
    EXPECT_EQ(hist[k], want) << "articles=" << k;
  }
}

TEST_F(PipelineTest, QuarterlyArticleSeriesMatchesBruteForce) {
  const auto series = engine::ArticlesPerQuarter(*db_);
  std::map<QuarterId, std::uint64_t> expected;
  for (const auto& m : dataset_->mentions) {
    ++expected[QuarterOfUnixSeconds(
        IntervalStartUnixSeconds(m.mention_interval))];
  }
  for (std::size_t q = 0; q < series.values.size(); ++q) {
    const QuarterId qid = series.first_quarter + static_cast<QuarterId>(q);
    const auto it = expected.find(qid);
    EXPECT_EQ(series.values[q], it == expected.end() ? 0 : it->second)
        << QuarterLabel(qid);
  }
}

TEST_F(PipelineTest, CoReportingDiagonalMatchesBruteForce) {
  // Brute force: distinct events per world source.
  std::map<std::uint32_t, std::set<std::uint64_t>> events_of;  // world idx
  for (const auto& m : dataset_->mentions) {
    events_of[m.source_index].insert(m.global_event_id);
  }
  const auto matrix = analysis::ComputeCoReporting(*db_);
  for (const auto& [world_idx, events] : events_of) {
    const std::uint32_t dict = world_to_dict_[world_idx];
    ASSERT_NE(dict, UINT32_MAX);
    EXPECT_EQ(matrix.PairCount(dict, dict), events.size());
  }
}

TEST_F(PipelineTest, CoReportingPairSample) {
  // Validate a handful of off-diagonal cells against brute force.
  const auto top = engine::TopSourcesByArticles(*db_, 4);
  const auto matrix = analysis::ComputeCoReporting(*db_, top);
  // dict id -> world idx
  std::map<std::uint32_t, std::uint32_t> dict_to_world;
  for (std::size_t w = 0; w < world_to_dict_.size(); ++w) {
    if (world_to_dict_[w] != UINT32_MAX) {
      dict_to_world[world_to_dict_[w]] = static_cast<std::uint32_t>(w);
    }
  }
  std::map<std::uint32_t, std::set<std::uint64_t>> events_of;
  for (const auto& m : dataset_->mentions) {
    events_of[m.source_index].insert(m.global_event_id);
  }
  for (std::size_t i = 0; i < top.size(); ++i) {
    for (std::size_t j = 0; j < top.size(); ++j) {
      const auto& ei = events_of[dict_to_world[top[i]]];
      const auto& ej = events_of[dict_to_world[top[j]]];
      std::uint64_t common = 0;
      for (const auto e : ei) common += ej.count(e);
      EXPECT_EQ(matrix.PairCount(i, j), common) << i << "," << j;
    }
  }
}

TEST_F(PipelineTest, CrossReportingMatchesBruteForce) {
  const auto report = engine::CountryCrossReporting(*db_);
  // Brute force from generator records.
  std::map<std::uint64_t, CountryId> event_location;
  for (const auto& ev : dataset_->events) {
    event_location[ev.global_event_id] = ev.location;
  }
  std::vector<std::uint64_t> expected(report.num_countries *
                                          report.num_countries,
                                      0);
  for (const auto& m : dataset_->mentions) {
    const CountryId pub = dataset_->world.sources[m.source_index].country;
    const CountryId rep = event_location[m.global_event_id];
    if (pub == kNoCountry || rep == kNoCountry) continue;
    ++expected[static_cast<std::size_t>(rep) * report.num_countries + pub];
  }
  EXPECT_EQ(report.counts, expected);
}

TEST_F(PipelineTest, PerSourceDelayMatchesBruteForce) {
  const auto stats = analysis::PerSourceDelayStats(*db_);
  // Brute force for the three most productive sources.
  const auto top = engine::TopSourcesByArticles(*db_, 3);
  std::map<std::uint64_t, std::int64_t> event_time;
  for (const auto& ev : dataset_->events) {
    event_time[ev.global_event_id] = ev.event_interval;
  }
  for (const auto dict_id : top) {
    std::vector<std::int64_t> delays;
    const std::string domain(db_->source_domain(dict_id));
    for (const auto& m : dataset_->mentions) {
      if (dataset_->world.sources[m.source_index].domain != domain) continue;
      const std::int64_t d =
          m.mention_interval - event_time[m.global_event_id];
      if (d >= 0) delays.push_back(d);
    }
    std::sort(delays.begin(), delays.end());
    ASSERT_FALSE(delays.empty());
    EXPECT_EQ(stats[dict_id].article_count, delays.size());
    EXPECT_EQ(stats[dict_id].min, delays.front());
    EXPECT_EQ(stats[dict_id].max, delays.back());
    // True median: even counts take the floored mean of the two middle
    // elements, matching PerSourceDelayStats.
    const std::size_t n = delays.size();
    const std::int64_t expected_median =
        n % 2 != 0 ? delays[n / 2]
                   : delays[n / 2 - 1] +
                         (delays[n / 2] - delays[n / 2 - 1]) / 2;
    EXPECT_EQ(stats[dict_id].median, expected_median);
  }
}

TEST_F(PipelineTest, FollowReportingDiagonalNeedsRepeats) {
  const auto top = engine::TopSourcesByArticles(*db_, 10);
  const auto matrix = analysis::ComputeFollowReporting(*db_, top);
  // f values are valid fractions and the column sums are positive for
  // heavily co-reporting group members.
  for (std::size_t i = 0; i < matrix.n; ++i) {
    for (std::size_t j = 0; j < matrix.n; ++j) {
      EXPECT_GE(matrix.F(i, j), 0.0);
      EXPECT_LE(matrix.F(i, j), 1.0);
    }
  }
  double total = 0.0;
  for (std::size_t j = 0; j < matrix.n; ++j) total += matrix.ColumnSum(j);
  EXPECT_GT(total, 0.0);
}

TEST_F(PipelineTest, CountryCoReportingSymmetricAndBounded) {
  const auto r = analysis::ComputeCountryCoReporting(*db_);
  std::uint64_t usa_events_bruteforce = 0;
  std::map<std::uint64_t, bool> seen;
  for (const auto& m : dataset_->mentions) {
    if (dataset_->world.sources[m.source_index].country == country::kUSA &&
        !seen[m.global_event_id]) {
      seen[m.global_event_id] = true;
      ++usa_events_bruteforce;
    }
  }
  EXPECT_EQ(r.event_counts[country::kUSA], usa_events_bruteforce);
}

TEST_F(PipelineTest, UrlsSurviveConversion) {
  // Spot-check that mention URLs round-trip through the binary format.
  const auto& url_col = *db_;
  (void)url_col;
  const auto top = engine::TopReportedEvents(*db_, 1);
  ASSERT_FALSE(top.empty());
  const std::string_view url = db_->event_source_url(top[0].event_row);
  EXPECT_TRUE(url.find("https://") == 0) << url;
}

}  // namespace
}  // namespace gdelt
