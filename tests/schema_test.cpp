#include "schema/gdelt_schema.hpp"

#include <gtest/gtest.h>

#include <set>

#include "schema/countries.hpp"

namespace gdelt {
namespace {

TEST(SchemaTest, EventFieldPositions) {
  // Spot-check wire positions against the GDELT 2.0 codebook.
  EXPECT_EQ(Index(EventField::kGlobalEventId), 0u);
  EXPECT_EQ(Index(EventField::kDay), 1u);
  EXPECT_EQ(Index(EventField::kQuadClass), 29u);
  EXPECT_EQ(Index(EventField::kNumArticles), 33u);
  EXPECT_EQ(Index(EventField::kActionGeoCountryCode), 53u);
  EXPECT_EQ(Index(EventField::kDateAdded), 59u);
  EXPECT_EQ(Index(EventField::kSourceUrl), 60u);
  EXPECT_EQ(kEventFieldCount, 61u);
}

TEST(SchemaTest, MentionFieldPositions) {
  EXPECT_EQ(Index(MentionField::kGlobalEventId), 0u);
  EXPECT_EQ(Index(MentionField::kEventTimeDate), 1u);
  EXPECT_EQ(Index(MentionField::kMentionTimeDate), 2u);
  EXPECT_EQ(Index(MentionField::kMentionSourceName), 4u);
  EXPECT_EQ(Index(MentionField::kMentionIdentifier), 5u);
  EXPECT_EQ(Index(MentionField::kConfidence), 11u);
  EXPECT_EQ(kMentionFieldCount, 16u);
}

TEST(SchemaTest, FieldNamesMatchCodebook) {
  EXPECT_EQ(EventFieldName(EventField::kGlobalEventId), "GlobalEventID");
  EXPECT_EQ(EventFieldName(EventField::kDateAdded), "DATEADDED");
  EXPECT_EQ(EventFieldName(EventField::kSourceUrl), "SOURCEURL");
  EXPECT_EQ(EventFieldName(EventField::kActionGeoCountryCode),
            "ActionGeo_CountryCode");
  EXPECT_EQ(MentionFieldName(MentionField::kMentionSourceName),
            "MentionSourceName");
}

TEST(CountryTest, RegistryInvariants) {
  const auto& countries = Countries();
  ASSERT_GE(countries.size(), 14u);
  ASSERT_LE(countries.size(), 64u) << "bitmask kernels require <= 64";
  std::set<std::string_view> fips;
  std::set<std::string_view> tlds;
  for (const auto& c : countries) {
    EXPECT_TRUE(fips.insert(c.fips).second) << "duplicate FIPS " << c.fips;
    EXPECT_TRUE(tlds.insert(c.tld).second) << "duplicate TLD " << c.tld;
    EXPECT_FALSE(c.name.empty());
  }
}

TEST(CountryTest, WellKnownIdsMatchRegistry) {
  EXPECT_EQ(CountryName(country::kUSA), "USA");
  EXPECT_EQ(CountryName(country::kUK), "UK");
  EXPECT_EQ(CountryName(country::kChina), "China");
  EXPECT_EQ(CountryFips(country::kChina), "CH");
  EXPECT_EQ(CountryFips(country::kAustralia), "AS");
  EXPECT_EQ(CountryFips(country::kSouthAfrica), "SF");
}

TEST(CountryTest, FipsLookup) {
  EXPECT_EQ(*CountryByFips("US"), country::kUSA);
  EXPECT_EQ(*CountryByFips("RS"), country::kRussia);
  EXPECT_FALSE(CountryByFips("XX").has_value());
  EXPECT_FALSE(CountryByFips("").has_value());
  EXPECT_FALSE(CountryByFips("us").has_value()) << "case-sensitive";
}

TEST(CountryTest, TldLookupAndComHeuristic) {
  EXPECT_EQ(*CountryByTld("com"), country::kUSA);
  EXPECT_EQ(*CountryByTld("uk"), country::kUK);
  EXPECT_FALSE(CountryByTld("org").has_value());
}

TEST(CountryTest, SourceDomainAttribution) {
  // The paper's acknowledged approximation: theguardian.com counts as US.
  EXPECT_EQ(*CountryOfSourceDomain("www.theguardian.com"), country::kUSA);
  EXPECT_EQ(*CountryOfSourceDomain("herald0.co.uk"), country::kUK);
  EXPECT_EQ(*CountryOfSourceDomain("https://news.com.au/x"),
            country::kAustralia);
  EXPECT_FALSE(CountryOfSourceDomain("weird.invalidtld").has_value());
  EXPECT_FALSE(CountryOfSourceDomain("").has_value());
}

}  // namespace
}  // namespace gdelt
