// Robustness sweeps: randomly corrupted inputs must produce clean errors,
// never crashes, hangs or silent bad data. Also covers the small util
// pieces (hashing, timers) not exercised elsewhere.
#include <gtest/gtest.h>

#include <memory>

#include "columnar/table.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gdelt {
namespace {

using testing::TempDir;

std::string MakeValidZip(const TempDir& dir) {
  const std::string path = dir.path() + "/v.zip";
  ZipWriter writer;
  EXPECT_TRUE(writer.Open(path).ok());
  EXPECT_TRUE(writer.AddEntry("a.csv", std::string(2000, 'a')).ok());
  EXPECT_TRUE(writer.AddEntry("b.csv", "short").ok());
  EXPECT_TRUE(writer.Finish().ok());
  auto bytes = ReadWholeFile(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(ZipRobustnessTest, RandomSingleByteCorruptionNeverCrashes) {
  TempDir dir("zipfuzz");
  const std::string valid = MakeValidZip(dir);
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupt = valid;
    const std::size_t pos = UniformBelow(rng, corrupt.size());
    corrupt[pos] ^= static_cast<char>(1 + UniformBelow(rng, 255));
    auto reader = ZipReader::Open(corrupt);
    if (!reader.ok()) continue;  // clean rejection
    // If the directory parsed, entry extraction must either succeed with
    // CRC-verified bytes or fail cleanly.
    for (std::size_t e = 0; e < reader->entries().size(); ++e) {
      auto data = reader->ReadEntry(e);
      (void)data;  // any Status is fine; no crash is the property
    }
  }
}

TEST(ZipRobustnessTest, RandomTruncationNeverCrashes) {
  TempDir dir("ziptrunc");
  const std::string valid = MakeValidZip(dir);
  Xoshiro256 rng(2025);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t cut = UniformBelow(rng, valid.size());
    auto reader = ZipReader::Open(valid.substr(0, cut));
    if (reader.ok()) {
      for (std::size_t e = 0; e < reader->entries().size(); ++e) {
        (void)reader->ReadEntry(e);
      }
    }
  }
}

std::string MakeValidTable(const TempDir& dir) {
  Table t;
  auto& a = t.AddColumn("a", ColumnType::kU64);
  auto& s = t.AddColumn("s", ColumnType::kStr);
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    a.Append<std::uint64_t>(rng());
    s.AppendString(std::to_string(rng() % 1000));
  }
  const std::string path = dir.path() + "/t.tbl";
  EXPECT_TRUE(t.WriteToFile(path).ok());
  auto bytes = ReadWholeFile(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(TableRobustnessTest, RandomCorruptionIsDetectedOrRejected) {
  TempDir dir("tablefuzz");
  const std::string valid = MakeValidTable(dir);
  Xoshiro256 rng(2026);
  const std::string path = dir.path() + "/fuzz.tbl";
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = valid;
    const std::size_t pos = UniformBelow(rng, corrupt.size());
    corrupt[pos] ^= static_cast<char>(1 + UniformBelow(rng, 255));
    ASSERT_TRUE(WriteWholeFile(path, corrupt).ok());
    auto loaded = Table::ReadFromFile(path);
    // The trailing CRC covers every byte before it, so ANY flip there is
    // detected; flips inside the CRC itself or the trailer magic also
    // fail. Loading must therefore always error.
    EXPECT_FALSE(loaded.ok()) << "flip at " << pos << " went undetected";
  }
}

TEST(TableRobustnessTest, RandomTruncationAlwaysRejected) {
  TempDir dir("tabletrunc");
  const std::string valid = MakeValidTable(dir);
  Xoshiro256 rng(2027);
  const std::string path = dir.path() + "/trunc.tbl";
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cut = UniformBelow(rng, valid.size());
    ASSERT_TRUE(WriteWholeFile(path, valid.substr(0, cut)).ok());
    EXPECT_FALSE(Table::ReadFromFile(path).ok()) << "cut=" << cut;
  }
}

class DatabaseRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("dbfuzz");
    testing::TestDbBuilder builder;
    Xoshiro256 rng(11);
    for (int i = 0; i < 40; ++i) {
      const auto id = builder.AddEvent(static_cast<std::int64_t>(i * 7));
      const int mentions = 1 + static_cast<int>(UniformBelow(rng, 4));
      for (int m = 0; m < mentions; ++m) {
        builder.AddMention(id, static_cast<std::int64_t>(i * 7 + m + 1),
                           "src" + std::to_string(UniformBelow(rng, 8)));
      }
    }
    ASSERT_TRUE(builder.WriteTo(dir_->path()).ok());
    ASSERT_TRUE(engine::Database::Load(dir_->path()).ok());
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(DatabaseRobustnessTest, LoaderRejectsBitFlippedTables) {
  // Any single-byte corruption in any of the engine's input files must be
  // caught by the integrity footer — the loader errors, never serves bad
  // rows, never crashes.
  Xoshiro256 rng(2028);
  for (const char* name : {"events.tbl", "mentions.tbl", "sources.dict"}) {
    const std::string path = dir_->path() + "/" + std::string(name);
    const auto valid = ReadWholeFile(path);
    ASSERT_TRUE(valid.ok());
    for (int trial = 0; trial < 40; ++trial) {
      std::string corrupt = *valid;
      const std::size_t pos = UniformBelow(rng, corrupt.size());
      corrupt[pos] ^= static_cast<char>(1 + UniformBelow(rng, 255));
      ASSERT_TRUE(WriteWholeFile(path, corrupt).ok());
      EXPECT_FALSE(engine::Database::Load(dir_->path()).ok())
          << name << " flip at " << pos << " went undetected";
    }
    ASSERT_TRUE(WriteWholeFile(path, *valid).ok());
  }
  EXPECT_TRUE(engine::Database::Load(dir_->path()).ok());
}

TEST_F(DatabaseRobustnessTest, LoaderRejectsTruncatedTables) {
  // Torn writes and partial copies surface as short files; the length in
  // the integrity footer catches every cut, including cuts that remove
  // the footer itself.
  Xoshiro256 rng(2029);
  for (const char* name : {"events.tbl", "mentions.tbl"}) {
    const std::string path = dir_->path() + "/" + std::string(name);
    const auto valid = ReadWholeFile(path);
    ASSERT_TRUE(valid.ok());
    for (int trial = 0; trial < 30; ++trial) {
      const std::size_t cut = UniformBelow(rng, valid->size());
      ASSERT_TRUE(WriteWholeFile(path, valid->substr(0, cut)).ok());
      EXPECT_FALSE(engine::Database::Load(dir_->path()).ok())
          << name << " cut at " << cut << " went undetected";
    }
    ASSERT_TRUE(WriteWholeFile(path, *valid).ok());
  }
  EXPECT_TRUE(engine::Database::Load(dir_->path()).ok());
}

// ---------------------------------------------------------------------------
// util odds and ends

TEST(HashTest, Fnv1aKnownVectorsAndStability) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
  // Compile-time evaluation works (used in switch-on-hash patterns).
  static_assert(Fnv1a64("events.tbl") == Fnv1a64("events.tbl"));
}

TEST(HashTest, MixAvalanches) {
  // Single-bit input changes must flip many output bits.
  const std::uint64_t a = MixU64(0x1234);
  const std::uint64_t b = MixU64(0x1235);
  int diff = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (((a ^ b) >> bit) & 1) ++diff;
  }
  EXPECT_GT(diff, 16);
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a little CPU deterministically.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<std::uint64_t>(i);
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0u);
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before);
}

}  // namespace
}  // namespace gdelt
