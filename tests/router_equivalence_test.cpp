// End-to-end router tests over real loopback sockets: a topology of
// gdelt_serve backends behind a Router must answer every supported query
// kind with `"text"` byte-identical to a single-node server (scattered
// kinds via partial-aggregate merge, order-sensitive kinds via relay),
// degrade structurally when a shard dies, and reject what it cannot do.
// Plus topology parsing and the LineClient connect retry policy against
// a dropped listener.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.hpp"
#include "router/pool.hpp"
#include "router/router.hpp"
#include "router/topology.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace gdelt::router {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

/// Binds an ephemeral listener, records its port, and closes it — a
/// port that connect() will refuse (until something else binds it).
int DroppedListenerPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// ------------------------------------------------------------ topology --

TEST(TopologyTest, ParsesShardsAndReplicas) {
  auto t = ParseTopology("127.0.0.1:7001,127.0.0.1:7002;localhost:7003");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_shards(), 2u);
  ASSERT_EQ(t->shards[0].size(), 2u);
  EXPECT_EQ(t->shards[0][0].host, "127.0.0.1");
  EXPECT_EQ(t->shards[0][0].port, 7001);
  EXPECT_EQ(t->shards[0][1].port, 7002);
  ASSERT_EQ(t->shards[1].size(), 1u);
  EXPECT_EQ(t->shards[1][0].host, "localhost");
  EXPECT_EQ(t->shards[1][0].port, 7003);
}

TEST(TopologyTest, TrimsWhitespace) {
  auto t = ParseTopology(" 127.0.0.1:1 , 127.0.0.1:2 ; 127.0.0.1:3 ");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_shards(), 2u);
  EXPECT_EQ(t->shards[0][1].port, 2);
}

TEST(TopologyTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseTopology("").ok());
  EXPECT_FALSE(ParseTopology("127.0.0.1").ok());          // no port
  EXPECT_FALSE(ParseTopology("127.0.0.1:0").ok());        // port 0
  EXPECT_FALSE(ParseTopology("127.0.0.1:70000").ok());    // out of range
  EXPECT_FALSE(ParseTopology("127.0.0.1:7001;").ok());    // empty shard
  EXPECT_FALSE(ParseTopology(";127.0.0.1:7001").ok());
  EXPECT_FALSE(ParseTopology("127.0.0.1:7001,,127.0.0.1:2").ok());
  EXPECT_FALSE(ParseTopology(":7001").ok());              // empty host
}

// -------------------------------------------------- client retry policy --

TEST(ClientRetryTest, BoundedRetryAgainstDroppedListener) {
  const int port = DroppedListenerPort();
  serve::ConnectOptions options;
  options.connect_timeout_ms = 200;
  options.max_attempts = 3;
  options.backoff_initial_ms = 10;
  options.backoff_multiplier = 2.0;
  options.backoff_max_ms = 40;
  options.jitter_seed = 7;
  std::vector<std::uint64_t> sleeps;
  options.sleep_fn = [&sleeps](std::uint64_t ms) { sleeps.push_back(ms); };

  auto client = serve::LineClient::Connect("127.0.0.1", port, options);
  EXPECT_FALSE(client.ok());
  // One backoff sleep between each of the 3 attempts.
  ASSERT_EQ(sleeps.size(), 2u);
  // Jitter keeps each delay within [capped/2, capped] of the
  // exponential schedule (10ms then 20ms).
  EXPECT_GE(sleeps[0], 5u);
  EXPECT_LE(sleeps[0], 10u);
  EXPECT_GE(sleeps[1], 10u);
  EXPECT_LE(sleeps[1], 20u);

  // Determinism: the same seed yields the same schedule.
  std::vector<std::uint64_t> again;
  options.sleep_fn = [&again](std::uint64_t ms) { again.push_back(ms); };
  EXPECT_FALSE(serve::LineClient::Connect("127.0.0.1", port, options).ok());
  EXPECT_EQ(sleeps, again);
}

TEST(ClientRetryTest, SingleAttemptByDefault) {
  const int port = DroppedListenerPort();
  serve::ConnectOptions options;
  options.connect_timeout_ms = 200;
  std::size_t naps = 0;
  options.sleep_fn = [&naps](std::uint64_t) { ++naps; };
  EXPECT_FALSE(serve::LineClient::Connect("127.0.0.1", port, options).ok());
  EXPECT_EQ(naps, 0u);
}

// --------------------------------------------------------------- router --

/// Two real backend servers over one hand-built database, and a router
/// in front. Logical shard counts beyond 2 reuse the same backends
/// (partition correctness does not care which process owns a range).
class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("router");
    TestDbBuilder builder;
    std::vector<std::uint64_t> events;
    for (int i = 0; i < 14; ++i) {
      const CountryId country =
          i % 4 == 3 ? kNoCountry : static_cast<CountryId>(1 + i % 3);
      events.push_back(builder.AddEvent(100 * (i + 1), country));
    }
    const char* sources[] = {"a.com", "b.com", "c.com",
                             "d.com", "e.com", "f.com"};
    for (std::size_t e = 0; e < events.size(); ++e) {
      for (std::size_t s = 0; s < 3; ++s) {
        builder.AddMention(events[e],
                           static_cast<std::int64_t>(100 * (e + 1) + 1 + s),
                           sources[(e + s) % 6],
                           static_cast<std::uint8_t>(30 + 10 * s));
      }
      if (e % 2 == 0) {
        builder.AddMention(events[e],
                           static_cast<std::int64_t>(100 * (e + 1) + 40),
                           sources[e % 6], 90);
      }
    }
    auto db = builder.Build(dir_->path());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<engine::Database>(std::move(*db));
  }

  void TearDown() override {
    if (router_) router_->Stop();
    for (auto& backend : backends_) backend->Stop();
  }

  void StartBackends(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      serve::ServerOptions options;
      options.scheduler.workers = 2;
      auto backend =
          std::make_unique<serve::Server>(*db_, nullptr, options);
      const auto started = backend->Start();
      ASSERT_TRUE(started.ok()) << started.ToString();
      backends_.push_back(std::move(backend));
    }
  }

  /// Starts the router over `shards` logical shards, assigning backend
  /// round-robin (shard i -> backend i % backends).
  void StartRouter(std::size_t shards, RouterOptions options = {}) {
    for (std::size_t i = 0; i < shards; ++i) {
      const auto& backend = backends_[i % backends_.size()];
      options.topology.shards.push_back(
          {Endpoint{"127.0.0.1", backend->port()}});
    }
    if (options.connect.connect_timeout_ms == 5'000) {
      options.connect.connect_timeout_ms = 2'000;
    }
    router_ = std::make_unique<Router>(options);
    const auto started = router_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  serve::LineClient ConnectRouter() {
    auto client = serve::LineClient::Connect("127.0.0.1", router_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static serve::JsonValue Parsed(const std::string& line) {
    auto v = serve::JsonValue::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    return v.ok() ? std::move(*v) : serve::JsonValue();
  }

  std::string SingleNodeText(const std::string& line) {
    auto request = serve::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << request.status().ToString();
    auto rendered = serve::RenderQuery(*db_, *request);
    EXPECT_TRUE(rendered.ok()) << rendered.status().ToString();
    return rendered.ok() ? rendered->text : std::string();
  }

  void ExpectRouterMatchesSingleNode(serve::LineClient& client,
                                     const std::string& line) {
    const auto response = client.RoundTrip(line);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const auto v = Parsed(*response);
    ASSERT_NE(v.Find("ok"), nullptr) << *response;
    ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
    ASSERT_NE(v.Find("text"), nullptr) << *response;
    EXPECT_EQ(v.Find("text")->AsString(), SingleNodeText(line)) << line;
    EXPECT_EQ(v.Find("partial_failure"), nullptr) << *response;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<engine::Database> db_;
  std::vector<std::unique_ptr<serve::Server>> backends_;
  std::unique_ptr<Router> router_;
};

constexpr const char* kAllKinds[] = {
    "stats",        "top-sources",      "top-events",
    "quarterly",    "coreport",         "follow",
    "country-coreport", "cross-report", "delay",
    "tone",         "first-reports",
};

TEST_F(RouterTest, TwoShardsByteIdenticalForAllKinds) {
  StartBackends(2);
  StartRouter(2);
  auto client = ConnectRouter();
  for (const char* kind : kAllKinds) {
    ExpectRouterMatchesSingleNode(
        client, std::string("{\"query\":\"") + kind + "\",\"top\":3}");
  }
}

TEST_F(RouterTest, FourShardsByteIdenticalForAllKinds) {
  StartBackends(2);
  StartRouter(4);
  auto client = ConnectRouter();
  for (const char* kind : kAllKinds) {
    ExpectRouterMatchesSingleNode(
        client, std::string("{\"query\":\"") + kind + "\",\"top\":3}");
  }
}

TEST_F(RouterTest, RestrictedQueriesMatch) {
  StartBackends(2);
  StartRouter(2);
  auto client = ConnectRouter();
  for (const char* kind : {"top-sources", "coreport", "cross-report"}) {
    ExpectRouterMatchesSingleNode(
        client, std::string("{\"query\":\"") + kind +
                    "\",\"top\":3,\"min_confidence\":45}");
  }
}

TEST_F(RouterTest, AnswersPingAndMetricsLocally) {
  StartBackends(1);
  StartRouter(2);
  auto client = ConnectRouter();
  const auto pong = client.RoundTrip(R"({"id":"p","query":"ping"})");
  ASSERT_TRUE(pong.ok());
  const auto v = Parsed(*pong);
  EXPECT_TRUE(v.Find("ok")->AsBool());
  EXPECT_TRUE(v.Find("pong")->AsBool());

  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  ASSERT_NE(m.Find("metrics"), nullptr) << *metrics;
  EXPECT_EQ(m.Find("metrics")->Find("num_shards")->AsInt(), 2);
  EXPECT_EQ(m.Find("metrics")->Find("shards")->elements().size(), 2u);
}

TEST_F(RouterTest, RejectsIngestAndUnknownKinds) {
  StartBackends(1);
  StartRouter(1);
  auto client = ConnectRouter();
  const auto ingest = client.RoundTrip(
      R"({"query":"ingest","export":"/tmp/x.csv"})");
  ASSERT_TRUE(ingest.ok());
  const auto v = Parsed(*ingest);
  EXPECT_FALSE(v.Find("ok")->AsBool());
  EXPECT_EQ(v.Find("error")->Find("code")->AsString(), "bad_request");

  const auto unknown = client.RoundTrip(R"({"query":"nope"})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(Parsed(*unknown).Find("error")->Find("code")->AsString(),
            "unknown_query");
}

TEST_F(RouterTest, RelaysBackendErrorsVerbatim) {
  StartBackends(1);
  StartRouter(1);
  auto client = ConnectRouter();
  // The backend times the request out itself (the worker finishes its
  // stalled execution at ~150ms, past the 50ms deadline, inside the
  // router's read-grace window); the router relays its error envelope
  // untouched.
  const auto response = client.RoundTrip(
      R"({"id":"t","query":"stats","timeout_ms":50,"debug_sleep_ms":150})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool());
  EXPECT_EQ(v.Find("error")->Find("code")->AsString(), "timeout");
  EXPECT_EQ(v.Find("id")->AsString(), "t");
}

TEST_F(RouterTest, DegradedResponseNamesTheDeadShard) {
  StartBackends(1);
  RouterOptions options;
  options.scatter_passes = 1;
  options.down_after_failures = 1;
  options.connect.connect_timeout_ms = 300;
  // Shard 0 is real; shard 1 points at a dropped listener.
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", backends_[0]->port()}});
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", DroppedListenerPort()}});
  router_ = std::make_unique<Router>(options);
  ASSERT_TRUE(router_->Start().ok());

  auto client = ConnectRouter();
  const auto response =
      client.RoundTrip(R"({"id":"d","query":"coreport","top":3})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  ASSERT_NE(v.Find("partial_failure"), nullptr) << *response;
  const auto& failed = v.Find("partial_failure")->elements();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].AsInt(), 1);
  // The surviving shard's text is present (an undercount, not empty).
  ASSERT_NE(v.Find("text"), nullptr);
  EXPECT_FALSE(v.Find("text")->AsString().empty());
  EXPECT_GT(router_->metrics().degraded_responses.load(), 0u);
}

TEST_F(RouterTest, ShardFailureBroadcastsCancelToSurvivors) {
  StartBackends(1);
  RouterOptions options;
  options.scatter_passes = 1;
  options.down_after_failures = 1;
  options.connect.connect_timeout_ms = 300;
  // Shard 0 is real; shard 1 points at a dropped listener, so its fetch
  // hard-fails and the router must tell the survivor to stop working on
  // this scatter's sub-request (best-effort `cancel` verb).
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", backends_[0]->port()}});
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", DroppedListenerPort()}});
  router_ = std::make_unique<Router>(options);
  ASSERT_TRUE(router_->Start().ok());

  auto client = ConnectRouter();
  const auto response =
      client.RoundTrip(R"({"id":"c","query":"coreport","top":3})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  ASSERT_NE(v.Find("partial_failure"), nullptr) << *response;
  // The survivor acknowledged a cancel line addressed at this scatter's
  // sub-request id (it may already have finished — cancellation is
  // best-effort and idempotent — but the verb round-tripped).
  EXPECT_GE(router_->metrics().cancels_sent.load(), 1u);
  // The router's metrics surface exposes the counter.
  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  EXPECT_GE(m.Find("metrics")->Find("cancels_sent")->AsInt(), 1);
}

TEST_F(RouterTest, AllShardsDeadIsUnavailable) {
  RouterOptions options;
  options.scatter_passes = 1;
  options.connect.connect_timeout_ms = 300;
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", DroppedListenerPort()}});
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", DroppedListenerPort()}});
  router_ = std::make_unique<Router>(options);
  ASSERT_TRUE(router_->Start().ok());

  auto client = ConnectRouter();
  const auto response =
      client.RoundTrip(R"({"query":"top-sources","top":3})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool());
  EXPECT_EQ(v.Find("error")->Find("code")->AsString(), "unavailable");
}

TEST_F(RouterTest, ReplicaFailoverInsideOneShard) {
  StartBackends(1);
  RouterOptions options;
  options.down_after_failures = 1;
  options.connect.connect_timeout_ms = 300;
  // Dead replica first: the router must fail over to the live one and
  // still answer, marking the dead endpoint down for next time.
  options.topology.shards.push_back(
      {Endpoint{"127.0.0.1", DroppedListenerPort()},
       Endpoint{"127.0.0.1", backends_[0]->port()}});
  router_ = std::make_unique<Router>(options);
  ASSERT_TRUE(router_->Start().ok());

  auto client = ConnectRouter();
  ExpectRouterMatchesSingleNode(client,
                                R"({"query":"top-sources","top":3})");
  EXPECT_FALSE(router_->pool().AllReplicasDown(0));
}

TEST_F(RouterTest, HealthProbeMarksDownAndRevives) {
  StartBackends(1);
  BackendPoolOptions options;
  options.down_after_failures = 1;
  options.connect.connect_timeout_ms = 300;
  Topology topology;
  const int dead_port = DroppedListenerPort();
  topology.shards.push_back({Endpoint{"127.0.0.1", backends_[0]->port()},
                             Endpoint{"127.0.0.1", dead_port}});
  BackendPool pool(topology, options);

  pool.ProbeAll();
  EXPECT_FALSE(pool.AllReplicasDown(0));
  std::string health = pool.HealthJson();
  EXPECT_NE(health.find("\"down\":true"), std::string::npos) << health;
  EXPECT_NE(health.find("\"down\":false"), std::string::npos) << health;
  // The live backend's queue gauges made it into the health surface.
  EXPECT_NE(health.find("\"queue_capacity\":64"), std::string::npos)
      << health;

  // A backend comes up on the dead port: the next sweep revives it.
  serve::ServerOptions revive_options;
  revive_options.port = dead_port;
  serve::Server revived(*db_, nullptr, revive_options);
  ASSERT_TRUE(revived.Start().ok());
  pool.ProbeAll();
  health = pool.HealthJson();
  EXPECT_EQ(health.find("\"down\":true"), std::string::npos) << health;
  revived.Stop();
}

}  // namespace
}  // namespace gdelt::router
