// Golden equivalence: every kernel migrated onto the morsel pool must
// produce bitwise-identical results to its OpenMP-team baseline — under
// the default morsel size and at both extremes of the knob. Integer
// partials merge in slot order (sums commute across morsels); float
// statistics are confined wholly within one morsel, so even doubles
// compare with EXPECT_EQ.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/delay.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/followreport.hpp"
#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "engine/sharded.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "parallel/morsel.hpp"
#include "test_util.hpp"

namespace gdelt::analysis {
namespace {

using ::gdelt::testing::TempDir;

class BackendEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("backend_equiv");
    auto cfg = gen::GeneratorConfig::Tiny();
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok());
    db_ = new engine::Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline engine::Database* db_ = nullptr;
};

TEST_F(BackendEquivalenceTest, PerSourceDelayStats) {
  const auto omp = PerSourceDelayStats(*db_, parallel::Backend::kOpenMp);
  for (const std::size_t morsel_rows :
       {std::size_t{0}, std::size_t{64}, std::size_t{1} << 22}) {
    parallel::SetMorselRows(morsel_rows);
    const auto pool = PerSourceDelayStats(*db_, parallel::Backend::kMorselPool);
    ASSERT_EQ(pool.size(), omp.size());
    for (std::size_t s = 0; s < omp.size(); ++s) {
      EXPECT_EQ(pool[s].article_count, omp[s].article_count);
      EXPECT_EQ(pool[s].min, omp[s].min);
      EXPECT_EQ(pool[s].max, omp[s].max);
      EXPECT_EQ(pool[s].average, omp[s].average);  // bitwise double
      EXPECT_EQ(pool[s].median, omp[s].median);
    }
  }
  parallel::SetMorselRows(0);
}

TEST_F(BackendEquivalenceTest, FollowReporting) {
  const auto top = engine::TopSourcesByArticles(*db_, 10);
  const auto omp =
      ComputeFollowReporting(*db_, top, parallel::Backend::kOpenMp);
  for (const std::size_t morsel_rows : {std::size_t{0}, std::size_t{64}}) {
    parallel::SetMorselRows(morsel_rows);
    const auto pool =
        ComputeFollowReporting(*db_, top, parallel::Backend::kMorselPool);
    EXPECT_EQ(pool.n, omp.n);
    EXPECT_EQ(pool.follow_counts, omp.follow_counts);
    EXPECT_EQ(pool.articles, omp.articles);
  }
  parallel::SetMorselRows(0);
}

TEST_F(BackendEquivalenceTest, FirstReports) {
  const auto omp =
      ComputeFirstReports(*db_, /*histogram_bins=*/18,
                          parallel::Backend::kOpenMp);
  for (const std::size_t morsel_rows : {std::size_t{0}, std::size_t{64}}) {
    parallel::SetMorselRows(morsel_rows);
    const auto pool = ComputeFirstReports(*db_, /*histogram_bins=*/18,
                                          parallel::Backend::kMorselPool);
    EXPECT_EQ(pool.first_reports, omp.first_reports);
    EXPECT_EQ(pool.first_delay_histogram, omp.first_delay_histogram);
    EXPECT_EQ(pool.events_broken_within_hour, omp.events_broken_within_hour);
    EXPECT_EQ(pool.repeat_events, omp.repeat_events);
    EXPECT_EQ(pool.repeat_articles, omp.repeat_articles);
  }
  parallel::SetMorselRows(0);
}

TEST_F(BackendEquivalenceTest, CoReportingDenseAndSparse) {
  const auto top = engine::TopSourcesByArticles(*db_, 12);
  for (const bool force_sparse : {false, true}) {
    TiledCoReportOptions omp_options;
    omp_options.use_morsel_pool = false;
    TiledCoReportOptions pool_options;
    pool_options.use_morsel_pool = true;
    if (force_sparse) {
      omp_options.dense_partials_budget_bytes = 1;
      pool_options.dense_partials_budget_bytes = 1;
    }
    const auto omp = ComputeCoReporting(*db_, top, omp_options);
    const auto pool = ComputeCoReporting(*db_, top, pool_options);
    EXPECT_EQ(pool.counts(), omp.counts())
        << (force_sparse ? "sparse" : "dense") << " flavor diverged";
  }
}

TEST_F(BackendEquivalenceTest, ShardedKernelsMatchSingleNode) {
  const auto sharded = engine::ShardedCountryCrossReporting(*db_, 7);
  const auto single = engine::CountryCrossReporting(*db_);
  EXPECT_EQ(sharded.counts, single.counts);
  EXPECT_EQ(sharded.articles_per_publisher, single.articles_per_publisher);
  EXPECT_EQ(engine::ShardedArticlesPerSource(*db_, 7),
            engine::ArticlesPerSource(*db_));
}

}  // namespace
}  // namespace gdelt::analysis
