#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "csv/tsv.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/file.hpp"
#include "schema/gdelt_schema.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace gdelt::gen {
namespace {

using ::gdelt::testing::TempDir;

GeneratorConfig TestConfig() { return GeneratorConfig::Tiny(); }

TEST(WorldTest, SourcesHaveValidCountriesAndDomains) {
  auto cfg = TestConfig();
  Xoshiro256 rng(cfg.seed);
  const World world = BuildWorld(cfg, rng);
  ASSERT_EQ(world.sources.size(), cfg.num_sources);
  std::set<std::string> domains;
  for (const auto& src : world.sources) {
    EXPECT_LT(src.country, Countries().size());
    EXPECT_TRUE(domains.insert(src.domain).second)
        << "duplicate domain " << src.domain;
    // The TLD heuristic must attribute each source to its true country —
    // this is what makes the country analyses self-consistent.
    const auto attributed = CountryOfSourceDomain(src.domain);
    ASSERT_TRUE(attributed.has_value()) << src.domain;
    EXPECT_EQ(*attributed, src.country) << src.domain;
    EXPECT_EQ(src.active_quarters.size(),
              static_cast<std::size_t>(world.num_quarters));
    EXPECT_TRUE(std::any_of(src.active_quarters.begin(),
                            src.active_quarters.end(),
                            [](bool b) { return b; }));
  }
}

TEST(WorldTest, MediaGroupMembersAlwaysActive) {
  auto cfg = TestConfig();
  Xoshiro256 rng(cfg.seed);
  const World world = BuildWorld(cfg, rng);
  ASSERT_EQ(world.group_members.size(), cfg.media_group_count);
  for (const auto& members : world.group_members) {
    EXPECT_EQ(members.size(), cfg.media_group_size);
    for (const auto m : members) {
      for (const bool active : world.sources[m].active_quarters) {
        EXPECT_TRUE(active);
      }
    }
  }
  // Group 0 is the UK regional group.
  EXPECT_EQ(world.sources[world.group_members[0][0]].country, country::kUK);
}

TEST(WorldTest, EventWeightsFavorUsa) {
  const auto w = MakeEventWeights();
  ASSERT_EQ(w.weight.size(), Countries().size());
  for (std::size_t c = 0; c < w.weight.size(); ++c) {
    if (c != country::kUSA) {
      EXPECT_GT(w.weight[country::kUSA], w.weight[c]);
    }
  }
  EXPECT_TRUE(std::is_sorted(w.cumulative.begin(), w.cumulative.end()));
}

TEST(GeneratorTest, DeterministicForSeed) {
  const auto cfg = TestConfig();
  const RawDataset a = GenerateDataset(cfg);
  const RawDataset b = GenerateDataset(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.mentions.size(), b.mentions.size());
  for (std::size_t i = 0; i < a.events.size(); i += 17) {
    EXPECT_EQ(a.events[i].global_event_id, b.events[i].global_event_id);
    EXPECT_EQ(a.events[i].event_interval, b.events[i].event_interval);
  }
  for (std::size_t i = 0; i < a.mentions.size(); i += 97) {
    EXPECT_EQ(a.mentions[i].source_index, b.mentions[i].source_index);
    EXPECT_EQ(a.mentions[i].mention_interval, b.mentions[i].mention_interval);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto cfg = TestConfig();
  const RawDataset a = GenerateDataset(cfg);
  cfg.seed = 777;
  const RawDataset b = GenerateDataset(cfg);
  EXPECT_NE(a.mentions.size(), b.mentions.size());
}

class GeneratedDatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new RawDataset(GenerateDataset(TestConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const RawDataset& ds() { return *dataset_; }

 private:
  static RawDataset* dataset_;
};

RawDataset* GeneratedDatasetTest::dataset_ = nullptr;

TEST_F(GeneratedDatasetTest, SortedAndInWindow) {
  EXPECT_TRUE(std::is_sorted(ds().events.begin(), ds().events.end(),
                             [](const EventRecord& a, const EventRecord& b) {
                               return a.added_interval < b.added_interval;
                             }));
  EXPECT_TRUE(std::is_sorted(
      ds().mentions.begin(), ds().mentions.end(),
      [](const MentionRecord& a, const MentionRecord& b) {
        return a.mention_interval < b.mention_interval;
      }));
  for (const auto& m : ds().mentions) {
    EXPECT_GE(m.mention_interval, ds().first_interval);
    EXPECT_LT(m.mention_interval, ds().end_interval);
  }
}

TEST_F(GeneratedDatasetTest, TruthMatchesRecords) {
  EXPECT_EQ(ds().truth.num_events, ds().events.size());
  EXPECT_EQ(ds().truth.num_mentions, ds().mentions.size());
  std::uint64_t article_sum = 0;
  std::uint64_t max_articles = 0;
  for (const auto& ev : ds().events) {
    EXPECT_GE(ev.num_articles, 1u) << "events need >= 1 article";
    article_sum += ev.num_articles;
    max_articles = std::max<std::uint64_t>(max_articles, ev.num_articles);
  }
  EXPECT_EQ(article_sum, ds().mentions.size());
  EXPECT_EQ(ds().truth.max_articles_per_event, max_articles);
  EXPECT_EQ(ds().truth.min_articles_per_event, 1u);

  std::vector<std::uint64_t> per_source(ds().world.sources.size(), 0);
  for (const auto& m : ds().mentions) ++per_source[m.source_index];
  EXPECT_EQ(per_source, ds().truth.articles_per_source);
}

TEST_F(GeneratedDatasetTest, MegaEventsAreLargest) {
  std::uint32_t max_ordinary = 0;
  std::uint32_t min_mega = UINT32_MAX;
  int megas = 0;
  for (const auto& ev : ds().events) {
    if (ev.is_mega) {
      min_mega = std::min(min_mega, ev.num_articles);
      ++megas;
    } else {
      max_ordinary = std::max(max_ordinary, ev.num_articles);
    }
  }
  EXPECT_EQ(megas, static_cast<int>(TestConfig().mega_event_count));
  EXPECT_GT(min_mega, max_ordinary)
      << "planted mega events must top the article ranking (Table III)";
}

TEST_F(GeneratedDatasetTest, DefectsInjected) {
  const auto cfg = TestConfig();
  EXPECT_EQ(ds().truth.missing_source_url, cfg.defect_missing_source_url);
  EXPECT_EQ(ds().truth.future_event_dates, cfg.defect_future_event_dates);
  std::uint32_t empty_urls = 0;
  std::uint32_t future = 0;
  for (const auto& ev : ds().events) {
    if (ev.source_url.empty()) ++empty_urls;
    if (ev.event_interval > ev.added_interval) ++future;
  }
  EXPECT_EQ(empty_urls, cfg.defect_missing_source_url);
  EXPECT_EQ(future, cfg.defect_future_event_dates);
}

TEST_F(GeneratedDatasetTest, DelaysArePositiveExceptDefects) {
  // Map global id -> future-dated flag.
  std::set<std::uint64_t> future_ids;
  for (const auto& ev : ds().events) {
    if (ev.event_interval > ev.added_interval) {
      future_ids.insert(ev.global_event_id);
    }
  }
  for (const auto& m : ds().mentions) {
    if (future_ids.count(m.global_event_id)) continue;
    EXPECT_GE(m.mention_interval - m.event_interval, 1);
  }
}

TEST(EmitTest, RowsHaveWireFieldCounts) {
  const RawDataset ds = GenerateDataset(TestConfig());
  std::string events_csv;
  AppendEventRow(events_csv, ds.world, ds.events.front());
  RowReader event_rows(events_csv, kEventFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  ASSERT_TRUE(event_rows.Next(fields)) << "61-column event row expected";
  EXPECT_TRUE(event_rows.errors().empty());

  std::string mentions_csv;
  AppendMentionRow(mentions_csv, ds.world, ds.mentions.front());
  RowReader mention_rows(mentions_csv, kMentionFieldCount);
  ASSERT_TRUE(mention_rows.Next(fields)) << "16-column mention row expected";
  EXPECT_TRUE(mention_rows.errors().empty());
}

TEST(EmitTest, WritesChunksAndMaster) {
  TempDir dir("emit");
  const auto cfg = TestConfig();
  const RawDataset ds = GenerateDataset(cfg);
  const auto result = EmitDataset(ds, cfg, dir.path());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_chunks, 0u);
  // Missing-archive injection: written files < listed files.
  EXPECT_EQ(result->chunk_files_written,
            result->num_chunks * 2 - cfg.defect_missing_archives * 2);
  EXPECT_TRUE(FileExists(result->master_path));
  EXPECT_GT(result->dropped_events + result->dropped_mentions, 0u);
}

}  // namespace
}  // namespace gdelt::gen
