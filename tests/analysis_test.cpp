#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/followreport.hpp"
#include "analysis/stats.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace gdelt::analysis {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

// ---------------------------------------------------------------------------
// Co-reporting on a hand-built scenario with known Jaccard values.

class CoReportScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("coreport");
    TestDbBuilder builder;
    const auto e1 = builder.AddEvent(100);
    const auto e2 = builder.AddEvent(200);
    const auto e3 = builder.AddEvent(300);
    const auto e4 = builder.AddEvent(400);
    builder.AddMention(e1, 101, "a.com");
    builder.AddMention(e1, 102, "b.com");
    builder.AddMention(e2, 201, "a.com");
    builder.AddMention(e2, 202, "b.com");
    builder.AddMention(e2, 203, "c.com");
    builder.AddMention(e2, 204, "a.com");  // duplicate article: one event
    builder.AddMention(e3, 301, "a.com");
    builder.AddMention(e4, 401, "c.com");
    auto db = builder.Build(dir_->path());
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<engine::Database>(std::move(*db));
    a_ = *db_->sources().Find("a.com");
    b_ = *db_->sources().Find("b.com");
    c_ = *db_->sources().Find("c.com");
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<engine::Database> db_;
  std::uint32_t a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(CoReportScenario, ExactCountsAndJaccard) {
  const CoReportMatrix m = ComputeCoReporting(*db_);
  // Diagonal: events per source.
  EXPECT_EQ(m.PairCount(a_, a_), 3u);
  EXPECT_EQ(m.PairCount(b_, b_), 2u);
  EXPECT_EQ(m.PairCount(c_, c_), 2u);
  // Pairs.
  EXPECT_EQ(m.PairCount(a_, b_), 2u);
  EXPECT_EQ(m.PairCount(a_, c_), 1u);
  EXPECT_EQ(m.PairCount(b_, c_), 1u);
  // Jaccard values.
  EXPECT_DOUBLE_EQ(m.Jaccard(a_, b_), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Jaccard(a_, c_), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.Jaccard(b_, c_), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Jaccard(a_, a_), 1.0);
}

TEST_F(CoReportScenario, MatrixIsSymmetric) {
  const CoReportMatrix m = ComputeCoReporting(*db_);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_EQ(m.PairCount(i, j), m.PairCount(j, i));
      EXPECT_GE(m.Jaccard(i, j), 0.0);
      EXPECT_LE(m.Jaccard(i, j), 1.0);
    }
  }
}

TEST_F(CoReportScenario, SubsetSelectsRows) {
  const std::vector<std::uint32_t> subset{c_, a_};
  const CoReportMatrix m = ComputeCoReporting(*db_, subset);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.PairCount(0, 0), 2u);  // c
  EXPECT_EQ(m.PairCount(1, 1), 3u);  // a
  EXPECT_EQ(m.PairCount(0, 1), 1u);  // c & a
}

TEST_F(CoReportScenario, AllKernelsMatchTiledDefault) {
  const CoReportMatrix tiled = ComputeCoReporting(*db_);
  const CoReportMatrix atomic = ComputeCoReportingDenseAtomic(*db_);
  const CoReportMatrix sparse = ComputeCoReportingSparse(*db_);
  TiledCoReportOptions force_sparse;
  force_sparse.dense_partials_budget_bytes = 0;
  const CoReportMatrix tiled_sparse = ComputeCoReporting(*db_, {}, force_sparse);
  EXPECT_EQ(tiled.counts(), atomic.counts());
  EXPECT_EQ(tiled.counts(), sparse.counts());
  EXPECT_EQ(tiled.counts(), tiled_sparse.counts());
}

TEST_F(CoReportScenario, TimeSlicedAssemblyMatchesDense) {
  const CoReportMatrix dense = ComputeCoReporting(*db_);
  const graph::SparseMatrix sliced = ComputeCoReportingTimeSliced(*db_);
  const graph::DenseMatrix as_dense = graph::SparseToDense(sliced);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    for (std::size_t j = 0; j < dense.size(); ++j) {
      EXPECT_DOUBLE_EQ(as_dense.At(i, j),
                       static_cast<double>(dense.PairCount(i, j)))
          << i << "," << j;
    }
  }
  // The sparse form must be symmetric with sorted columns per row.
  for (std::size_t r = 0; r < sliced.rows; ++r) {
    for (std::uint64_t k = sliced.row_offsets[r] + 1;
         k < sliced.row_offsets[r + 1]; ++k) {
      EXPECT_LT(sliced.col_index[k - 1], sliced.col_index[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// Follow-reporting with exact expected f values.

TEST(FollowReportTest, HandComputedScenario) {
  TempDir dir("follow");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(100);
  builder.AddMention(e, 101, "a.com");
  builder.AddMention(e, 102, "b.com");
  builder.AddMention(e, 103, "a.com");
  builder.AddMention(e, 102, "b.com");  // same interval as b's first
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto a = *db->sources().Find("a.com");
  const auto b = *db->sources().Find("b.com");
  const std::vector<std::uint32_t> subset{a, b};
  const FollowReportMatrix m = ComputeFollowReporting(*db, subset);
  ASSERT_EQ(m.n, 2u);
  EXPECT_EQ(m.articles[0], 2u);
  EXPECT_EQ(m.articles[1], 2u);
  EXPECT_EQ(m.FollowCount(0, 1), 2u);  // both b articles follow a@101
  EXPECT_EQ(m.FollowCount(1, 0), 1u);  // a@103 follows b@102
  EXPECT_EQ(m.FollowCount(0, 0), 1u);  // a@103 follows a@101
  EXPECT_EQ(m.FollowCount(1, 1), 0u);  // same-interval b does not follow b
  EXPECT_DOUBLE_EQ(m.F(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.F(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.ColumnSum(0), 1.0);  // 0.5 (self) + 0.5 (b leads)
}

TEST(FollowReportTest, SingleMentionEventsContributeNothing) {
  TempDir dir("follow1");
  TestDbBuilder builder;
  for (int i = 0; i < 5; ++i) {
    const auto e = builder.AddEvent(100 + i * 10);
    builder.AddMention(e, 101 + i * 10, "a.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const std::vector<std::uint32_t> subset{*db->sources().Find("a.com")};
  const FollowReportMatrix m = ComputeFollowReporting(*db, subset);
  EXPECT_EQ(m.FollowCount(0, 0), 0u);
  EXPECT_EQ(m.articles[0], 5u);
}

// ---------------------------------------------------------------------------
// Country co-reporting.

TEST(CountryCoReportTest, HandComputedJaccard) {
  TempDir dir("ccr");
  TestDbBuilder builder;
  // E1: US + UK press; E2: US only; E3: UK + AU; E4: US + UK.
  const auto e1 = builder.AddEvent(100);
  const auto e2 = builder.AddEvent(200);
  const auto e3 = builder.AddEvent(300);
  const auto e4 = builder.AddEvent(400);
  builder.AddMention(e1, 101, "x.com");
  builder.AddMention(e1, 102, "y.co.uk");
  builder.AddMention(e2, 201, "x.com");
  builder.AddMention(e3, 301, "y.co.uk");
  builder.AddMention(e3, 302, "z.com.au");
  builder.AddMention(e4, 401, "w.com");
  builder.AddMention(e4, 402, "y.co.uk");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const CountryCoReport r = ComputeCountryCoReporting(*db);
  EXPECT_EQ(r.event_counts[country::kUSA], 3u);
  EXPECT_EQ(r.event_counts[country::kUK], 3u);
  EXPECT_EQ(r.event_counts[country::kAustralia], 1u);
  EXPECT_EQ(r.Pair(country::kUSA, country::kUK), 2u);
  EXPECT_EQ(r.Pair(country::kUK, country::kAustralia), 1u);
  EXPECT_EQ(r.Pair(country::kUSA, country::kAustralia), 0u);
  EXPECT_DOUBLE_EQ(r.Jaccard(country::kUSA, country::kUK), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(r.Jaccard(country::kUK, country::kAustralia), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.Jaccard(country::kUSA, country::kAustralia), 0.0);
  // Symmetry.
  for (std::size_t c = 0; c < r.n; ++c) {
    for (std::size_t d = 0; d < r.n; ++d) {
      EXPECT_EQ(r.Pair(c, d), r.Pair(d, c));
    }
  }
}

// ---------------------------------------------------------------------------
// Delay statistics.

TEST(DelayTest, PerSourceStatsExact) {
  TempDir dir("delay");
  TestDbBuilder builder;
  // One source, delays 1, 3, 5, 7, 100.
  for (const std::int64_t d : {1, 3, 5, 7, 100}) {
    const auto e = builder.AddEvent(1000);
    builder.AddMention(e, 1000 + d, "s.com");
  }
  // A second source with one negative (defective) delay and one valid.
  const auto bad = builder.AddEvent(5000);
  builder.AddMention(bad, 4990, "t.com");  // event in the "future"
  builder.AddMention(bad, 5004, "t.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto stats = PerSourceDelayStats(*db);
  const auto s = *db->sources().Find("s.com");
  const auto t = *db->sources().Find("t.com");
  EXPECT_EQ(stats[s].article_count, 5u);
  EXPECT_EQ(stats[s].min, 1);
  EXPECT_EQ(stats[s].max, 100);
  EXPECT_EQ(stats[s].median, 5);
  EXPECT_DOUBLE_EQ(stats[s].average, (1 + 3 + 5 + 7 + 100) / 5.0);
  // Negative delay excluded.
  EXPECT_EQ(stats[t].article_count, 1u);
  EXPECT_EQ(stats[t].min, 4);
  EXPECT_EQ(stats[t].max, 4);
}

TEST(DelayTest, MetricHistogramBinsByPowersOfTwo) {
  std::vector<DelayStats> stats(3);
  stats[0] = {10, 1, 96, 20.0, 16};   // median 16 -> bin 5
  stats[1] = {10, 0, 10, 3.0, 2};     // median 2 -> bin 2
  stats[2] = {0, 0, 0, 0.0, 0};       // no articles: skipped
  const auto hist = DelayMetricHistogram(stats, DelayMetric::kMedian, 8);
  std::uint64_t total = 0;
  for (const auto v : hist) total += v;
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(hist[5], 1u);  // 16 -> 1 + log2(16) = 5
  EXPECT_EQ(hist[2], 1u);  // 2 -> 1 + log2(2) = 2
}

TEST(DelayTest, QuarterlyAverageAndMedian) {
  TempDir dir("delayq");
  TestDbBuilder builder;
  // All in one quarter (interval 1,600,000 ~ 2015-07); delays 2, 4, 12.
  const std::int64_t base = 1600000;
  for (const std::int64_t d : {2, 4, 12}) {
    const auto e = builder.AddEvent(base);
    builder.AddMention(e, base + d, "s.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const QuarterlyDelay q = QuarterlyDelayStats(*db);
  ASSERT_EQ(q.average.size(), 1u);
  EXPECT_DOUBLE_EQ(q.average[0], 6.0);
  EXPECT_EQ(q.median[0], 4);
}

TEST(DelayTest, MedianEvenCountIsMeanOfMiddlePair) {
  TempDir dir("delayeven");
  TestDbBuilder builder;
  // Delays 1, 2, 10, 20: the true median is floor((2 + 10) / 2) = 6 —
  // a bare nth_element at n/2 would report the upper middle element (10).
  for (const std::int64_t d : {1, 2, 10, 20}) {
    const auto e = builder.AddEvent(1000);
    builder.AddMention(e, 1000 + d, "s.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto stats = PerSourceDelayStats(*db);
  const auto s = *db->sources().Find("s.com");
  EXPECT_EQ(stats[s].median, 6);
  // The quarterly path must agree with the per-source path.
  const QuarterlyDelay q = QuarterlyDelayStats(*db);
  ASSERT_EQ(q.median.size(), 1u);
  EXPECT_EQ(q.median[0], 6);
}

TEST(DelayTest, MedianEvenCountFloorsHalfSteps) {
  TempDir dir("delayfloor");
  TestDbBuilder builder;
  // Delays 1, 2: the mean of the middle pair is 1.5; the integral median
  // floors to 1.
  for (const std::int64_t d : {1, 2}) {
    const auto e = builder.AddEvent(1000);
    builder.AddMention(e, 1000 + d, "s.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto stats = PerSourceDelayStats(*db);
  const auto s = *db->sources().Find("s.com");
  EXPECT_EQ(stats[s].median, 1);
  const QuarterlyDelay q = QuarterlyDelayStats(*db);
  ASSERT_EQ(q.median.size(), 1u);
  EXPECT_EQ(q.median[0], 1);
}

TEST(DelayTest, MedianOddCountIsMiddleElement) {
  TempDir dir("delayodd");
  TestDbBuilder builder;
  for (const std::int64_t d : {3, 9, 27}) {
    const auto e = builder.AddEvent(1000);
    builder.AddMention(e, 1000 + d, "s.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto stats = PerSourceDelayStats(*db);
  const auto s = *db->sources().Find("s.com");
  EXPECT_EQ(stats[s].median, 9);
  const QuarterlyDelay q = QuarterlyDelayStats(*db);
  ASSERT_EQ(q.median.size(), 1u);
  EXPECT_EQ(q.median[0], 9);
}

TEST(DelayTest, SlowArticleCounting) {
  TempDir dir("delays");
  TestDbBuilder builder;
  const std::int64_t base = 1600000;
  for (const std::int64_t d : {50, 96, 97, 500}) {
    const auto e = builder.AddEvent(base);
    builder.AddMention(e, base + d, "s.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto slow = SlowArticlesPerQuarter(*db);
  std::uint64_t total = 0;
  for (const auto v : slow.values) total += v;
  EXPECT_EQ(total, 2u) << "only delays strictly > 96 count";
}

// ---------------------------------------------------------------------------
// Distributions.

TEST(DistributionTest, EventSizeHistogram) {
  TempDir dir("dist");
  TestDbBuilder builder;
  const auto e1 = builder.AddEvent(100);  // 3 articles
  const auto e2 = builder.AddEvent(200);  // 1 article
  const auto e3 = builder.AddEvent(300);  // 1 article
  builder.AddMention(e1, 101, "a.com");
  builder.AddMention(e1, 102, "b.com");
  builder.AddMention(e1, 103, "c.com");
  builder.AddMention(e2, 201, "a.com");
  builder.AddMention(e3, 301, "b.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto hist = EventSizeDistribution(*db);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_DOUBLE_EQ(AverageArticlesPerEvent(*db), 5.0 / 3.0);
}

TEST(DistributionTest, PowerLawMleRecoversAlpha) {
  Xoshiro256 rng(55);
  const double true_alpha = 2.35;
  std::vector<std::uint64_t> samples(200000);
  for (auto& s : samples) {
    const double u = UniformDouble(rng);
    s = static_cast<std::uint64_t>(
        std::pow(1.0 - u, -1.0 / (true_alpha - 1.0)));
    s = std::max<std::uint64_t>(s, 1);
  }
  // Discreteness biases the continuous MLE at xmin=1; with xmin=8 the
  // estimate should land near the true exponent.
  const double alpha = PowerLawAlphaMle(samples, 8);
  EXPECT_NEAR(alpha, true_alpha, 0.12);
}

TEST(DistributionTest, MleEdgeCases) {
  EXPECT_DOUBLE_EQ(PowerLawAlphaMle({}, 1), 0.0);
  const std::vector<std::uint64_t> one{5};
  EXPECT_DOUBLE_EQ(PowerLawAlphaMle(one, 1), 0.0);
  EXPECT_DOUBLE_EQ(PowerLawAlphaMle(one, 0), 0.0);
}

// ---------------------------------------------------------------------------
// Dataset statistics.

TEST(StatsTest, TableOneFields) {
  TempDir dir("stats");
  TestDbBuilder builder;
  const auto e1 = builder.AddEvent(100);
  const auto e2 = builder.AddEvent(150);
  builder.AddMention(e1, 101, "a.com");
  builder.AddMention(e1, 110, "b.com");
  builder.AddMention(e1, 120, "a.com");
  builder.AddMention(e2, 151, "b.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const DatasetStatistics s = ComputeDatasetStatistics(*db);
  EXPECT_EQ(s.sources, 2u);
  EXPECT_EQ(s.events, 2u);
  EXPECT_EQ(s.articles, 4u);
  EXPECT_EQ(s.capture_intervals, 51u);  // 101..151 inclusive
  EXPECT_EQ(s.min_articles_per_event, 1u);
  EXPECT_EQ(s.max_articles_per_event, 3u);
  EXPECT_DOUBLE_EQ(s.weighted_avg_articles_per_event, 2.0);
  EXPECT_NE(s.ToText().find("Articles"), std::string::npos);
}

}  // namespace
}  // namespace gdelt::analysis
