#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace gdelt {
namespace {

TEST(TrimTest, Basic) {
  EXPECT_EQ(TrimView("  a b  "), "a b");
  EXPECT_EQ(TrimView(""), "");
  EXPECT_EQ(TrimView(" \t\r\n "), "");
  EXPECT_EQ(TrimView("x"), "x");
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLowerAscii("AbC123-Z"), "abc123-z");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("masterfilelist.txt", "master"));
  EXPECT_FALSE(StartsWith("m", "master"));
  EXPECT_TRUE(EndsWith("a.export.CSV.zip", ".export.CSV.zip"));
  EXPECT_FALSE(EndsWith("zip", ".export.CSV.zip"));
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = SplitView("a\t\tb\t", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, SingleField) {
  const auto parts = SplitView("abc", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, ReusesBuffer) {
  std::vector<std::string_view> buf;
  SplitInto("1,2,3", ',', buf);
  EXPECT_EQ(buf.size(), 3u);
  SplitInto("x", ',', buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

struct IntCase {
  std::string_view text;
  bool ok;
  std::int64_t value;
};

class ParseInt64Test : public ::testing::TestWithParam<IntCase> {};

TEST_P(ParseInt64Test, Parses) {
  const auto& c = GetParam();
  const auto got = ParseInt64(c.text);
  EXPECT_EQ(got.has_value(), c.ok) << c.text;
  if (c.ok) {
    EXPECT_EQ(*got, c.value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseInt64Test,
    ::testing::Values(IntCase{"0", true, 0}, IntCase{"-17", true, -17},
                      IntCase{"9223372036854775807", true, INT64_MAX},
                      IntCase{"9223372036854775808", false, 0},
                      IntCase{"", false, 0}, IntCase{"12a", false, 0},
                      IntCase{" 12", false, 0}, IntCase{"1.5", false, 0},
                      IntCase{"20150218230000", true, 20150218230000}));

TEST(ParseDoubleTest, StrictWholeView) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("2.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(UrlTest, HostOfUrl) {
  EXPECT_EQ(HostOfUrl("https://www.a.co.uk/x/y?z"), "www.a.co.uk");
  EXPECT_EQ(HostOfUrl("a.co.uk/path"), "a.co.uk");
  EXPECT_EQ(HostOfUrl("http://host:8080/p"), "host");
  EXPECT_EQ(HostOfUrl("plainhost"), "plainhost");
}

struct TldCase {
  std::string_view input;
  std::string_view tld;
};

class TldTest : public ::testing::TestWithParam<TldCase> {};

TEST_P(TldTest, Extracts) {
  EXPECT_EQ(TopLevelDomain(GetParam().input), GetParam().tld);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TldTest,
    ::testing::Values(TldCase{"https://www.theguardian.com/world", "com"},
                      TldCase{"herald0.co.uk", "uk"},
                      TldCase{"a.b.c.au", "au"},
                      TldCase{"nodots", ""},
                      TldCase{"trailingdot.", ""},
                      TldCase{"host:443", ""},       // numeric tail rejected
                      TldCase{"1.2.3.4", ""},
                      TldCase{"", ""}));

TEST(FormatTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(FormatTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(12345), "12,345");
  EXPECT_EQ(WithThousands(1090310118ull), "1,090,310,118");
}

}  // namespace
}  // namespace gdelt
