#include "gtime/timestamp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gdelt {
namespace {

TEST(CivilTest, KnownEpochs) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(2015, 2, 18), 16484);
}

TEST(CivilTest, RoundTripDays) {
  for (std::int64_t d = -400000; d <= 400000; d += 37) {
    std::int32_t y;
    unsigned m, day;
    CivilFromDays(d, y, m, day);
    EXPECT_EQ(DaysFromCivil(y, m, day), d);
  }
}

TEST(LeapYearTest, Rules) {
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2019));
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2015, 2), 28);
  EXPECT_EQ(DaysInMonth(2015, 12), 31);
  EXPECT_EQ(DaysInMonth(2015, 4), 30);
}

TEST(UnixSecondsTest, RoundTripRandom) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    // 2015..2020, the paper's window.
    const std::int64_t t =
        1424217600 + static_cast<std::int64_t>(UniformBelow(rng, 153000000));
    const CivilDateTime civil = FromUnixSeconds(t);
    EXPECT_EQ(ToUnixSeconds(civil), t);
  }
}

TEST(GdeltTimestampTest, PackUnpack) {
  const CivilDateTime t{2015, 2, 18, 23, 0, 0};
  EXPECT_EQ(ToGdeltTimestamp(t), 20150218230000ull);
  const auto parsed = ParseGdeltTimestamp(std::uint64_t{20150218230000ull});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), t);
  EXPECT_EQ(FormatGdeltTimestamp(t), "20150218230000");
}

TEST(GdeltTimestampTest, TextParse) {
  EXPECT_TRUE(ParseGdeltTimestamp("20191231235959").ok());
  EXPECT_FALSE(ParseGdeltTimestamp("2019123123595").ok());    // 13 digits
  EXPECT_FALSE(ParseGdeltTimestamp("2019123123595x").ok());   // non-numeric
  EXPECT_FALSE(ParseGdeltTimestamp("").ok());
}

struct BadStamp {
  std::uint64_t packed;
  const char* why;
};

class InvalidTimestampTest : public ::testing::TestWithParam<BadStamp> {};

TEST_P(InvalidTimestampTest, Rejected) {
  EXPECT_FALSE(ParseGdeltTimestamp(GetParam().packed).ok())
      << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InvalidTimestampTest,
    ::testing::Values(BadStamp{20151318000000ull, "month 13"},
                      BadStamp{20150018000000ull, "month 0"},
                      BadStamp{20150232000000ull, "Feb 32"},
                      BadStamp{20150229000000ull, "Feb 29 non-leap"},
                      BadStamp{20150218240000ull, "hour 24"},
                      BadStamp{20150218236000ull, "minute 60"},
                      BadStamp{20150218230060ull, "second 60"},
                      BadStamp{18991231000000ull, "before 1900"},
                      BadStamp{99999218230000ull, "year overflow"}));

TEST(GdeltTimestampTest, LeapDayAccepted) {
  EXPECT_TRUE(ParseGdeltTimestamp(std::uint64_t{20160229120000ull}).ok());
}

TEST(IntervalTest, FifteenMinuteArithmetic) {
  const CivilDateTime t{2015, 2, 18, 0, 0, 0};
  const IntervalId id = IntervalOfCivil(t);
  EXPECT_EQ(IntervalStartUnixSeconds(id), ToUnixSeconds(t));
  // 14:59 into the interval still maps to the same id.
  CivilDateTime inside = t;
  inside.minute = 14;
  inside.second = 59;
  EXPECT_EQ(IntervalOfCivil(inside), id);
  inside.minute = 15;
  inside.second = 0;
  EXPECT_EQ(IntervalOfCivil(inside), id + 1);
}

TEST(IntervalTest, DayHas96Intervals) {
  const IntervalId start = IntervalOfCivil({2016, 5, 1, 0, 0, 0});
  const IntervalId next_day = IntervalOfCivil({2016, 5, 2, 0, 0, 0});
  EXPECT_EQ(next_day - start, kIntervalsPerDay);
  EXPECT_EQ(kIntervalsPerDay, 96);
}

TEST(IntervalTest, RoundTripStart) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto id = static_cast<IntervalId>(UniformBelow(rng, 2000000));
    EXPECT_EQ(IntervalOfUnixSeconds(IntervalStartUnixSeconds(id)), id);
  }
}

TEST(IntervalTest, NegativeSecondsFloor) {
  EXPECT_EQ(IntervalOfUnixSeconds(-1), -1);
  EXPECT_EQ(IntervalOfUnixSeconds(-900), -1);
  EXPECT_EQ(IntervalOfUnixSeconds(-901), -2);
  EXPECT_EQ(IntervalOfUnixSeconds(0), 0);
}

TEST(QuarterTest, Bucketing) {
  EXPECT_EQ(QuarterOfCivil({2015, 1, 1, 0, 0, 0}), MakeQuarter(2015, 1));
  EXPECT_EQ(QuarterOfCivil({2015, 3, 31, 23, 59, 59}), MakeQuarter(2015, 1));
  EXPECT_EQ(QuarterOfCivil({2015, 4, 1, 0, 0, 0}), MakeQuarter(2015, 2));
  EXPECT_EQ(QuarterOfCivil({2015, 12, 31, 0, 0, 0}), MakeQuarter(2015, 4));
  EXPECT_EQ(QuarterOfCivil({2016, 1, 1, 0, 0, 0}), MakeQuarter(2016, 1));
}

TEST(QuarterTest, LabelsAndStarts) {
  EXPECT_EQ(QuarterLabel(MakeQuarter(2015, 1)), "2015Q1");
  EXPECT_EQ(QuarterLabel(MakeQuarter(2019, 4)), "2019Q4");
  const CivilDateTime start = QuarterStartCivil(MakeQuarter(2017, 3));
  EXPECT_EQ(start.year, 2017);
  EXPECT_EQ(start.month, 7);
  EXPECT_EQ(start.day, 1);
}

TEST(QuarterTest, DenselyOrderedAcrossYears) {
  EXPECT_EQ(MakeQuarter(2016, 1) - MakeQuarter(2015, 4), 1);
  // The paper's window spans 2015Q1..2019Q4 = 20 quarters.
  EXPECT_EQ(MakeQuarter(2019, 4) - MakeQuarter(2015, 1) + 1, 20);
}

}  // namespace
}  // namespace gdelt
