#include "analysis/firstreport.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gdelt::analysis {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

TEST(FirstReportTest, HandComputedScenario) {
  TempDir dir("firstreport");
  TestDbBuilder builder;
  // E1 at 100: a first (delay 2), then b, then a again (repeat).
  const auto e1 = builder.AddEvent(100);
  builder.AddMention(e1, 102, "a.com");
  builder.AddMention(e1, 105, "b.com");
  builder.AddMention(e1, 110, "a.com");
  // E2 at 200: b first (delay 3).
  const auto e2 = builder.AddEvent(200);
  builder.AddMention(e2, 203, "b.com");
  // E3 at 300: b first with delay 40 (beyond the 1-hour cut).
  const auto e3 = builder.AddEvent(300);
  builder.AddMention(e3, 340, "b.com");
  builder.AddMention(e3, 341, "b.com");
  builder.AddMention(e3, 342, "b.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto a = *db->sources().Find("a.com");
  const auto b = *db->sources().Find("b.com");

  const FirstReportStats stats = ComputeFirstReports(*db);
  EXPECT_EQ(stats.first_reports[a], 1u);
  EXPECT_EQ(stats.first_reports[b], 2u);
  // Delays: 2 (bin 2), 3 (bin 2), 40 (bin 6: [32,64)).
  EXPECT_EQ(stats.first_delay_histogram[2], 2u);
  EXPECT_EQ(stats.first_delay_histogram[6], 1u);
  EXPECT_EQ(stats.events_broken_within_hour, 2u);
  // Repeats: a has 1 repeat event with 1 extra article; b has 1 repeat
  // event (E3) with 2 extra articles.
  EXPECT_EQ(stats.repeat_events[a], 1u);
  EXPECT_EQ(stats.repeat_articles[a], 1u);
  EXPECT_EQ(stats.repeat_events[b], 1u);
  EXPECT_EQ(stats.repeat_articles[b], 2u);
  EXPECT_DOUBLE_EQ(stats.RepeatRate(b, 6), 2.0 / 6.0);
}

TEST(FirstReportTest, TieBreaksByCaptureOrder) {
  TempDir dir("firstreport2");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(100);
  builder.AddMention(e, 101, "x.com");  // same interval, inserted first
  builder.AddMention(e, 101, "y.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const FirstReportStats stats = ComputeFirstReports(*db);
  EXPECT_EQ(stats.first_reports[*db->sources().Find("x.com")], 1u);
  EXPECT_EQ(stats.first_reports[*db->sources().Find("y.com")], 0u);
}

TEST(FirstReportTest, TotalsAreConsistent) {
  TempDir dir("firstreport3");
  TestDbBuilder builder;
  for (int i = 0; i < 20; ++i) {
    const auto e = builder.AddEvent(1000 + i * 10);
    builder.AddMention(e, 1001 + i * 10, i % 2 ? "a.com" : "b.com");
    builder.AddMention(e, 1005 + i * 10, "c.com");
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const FirstReportStats stats = ComputeFirstReports(*db);
  std::uint64_t total_first = 0;
  for (const auto f : stats.first_reports) total_first += f;
  EXPECT_EQ(total_first, db->num_events());
  std::uint64_t hist_total = 0;
  for (const auto h : stats.first_delay_histogram) hist_total += h;
  EXPECT_EQ(hist_total, db->num_events());  // no negative-delay defects here
}

TEST(FirstReportTest, NegativeFirstDelayExcludedFromHistogram) {
  TempDir dir("firstreport4");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(5000);
  builder.AddMention(e, 4990, "t.com");  // future-dated event
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const FirstReportStats stats = ComputeFirstReports(*db);
  EXPECT_EQ(stats.first_reports[*db->sources().Find("t.com")], 1u);
  std::uint64_t hist_total = 0;
  for (const auto h : stats.first_delay_histogram) hist_total += h;
  EXPECT_EQ(hist_total, 0u);
}

}  // namespace
}  // namespace gdelt::analysis
