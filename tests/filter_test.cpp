#include "engine/filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "convert/converter.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "parallel/morsel.hpp"
#include "test_util.hpp"

namespace gdelt::engine {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

/// Brute-force reference selection.
std::vector<std::uint64_t> BruteForceSelect(const Database& db,
                                            const MentionFilter& f) {
  std::vector<std::uint64_t> rows;
  for (std::uint64_t i = 0; i < db.num_mentions(); ++i) {
    const std::int64_t at = db.mention_interval()[i];
    if (at < f.begin_interval || at >= f.end_interval) continue;
    if (db.mention_confidence()[i] < f.min_confidence) continue;
    if (f.publisher_country != kNoCountry &&
        db.source_country()[db.mention_source_id()[i]] !=
            f.publisher_country) {
      continue;
    }
    const std::uint32_t row = db.mention_event_row()[i];
    if (row == convert::kOrphanEventRow) {
      if (f.exclude_orphans || f.event_country != kNoCountry) continue;
    } else if (f.event_country != kNoCountry &&
               db.event_country()[row] != f.event_country) {
      continue;
    }
    rows.push_back(i);
  }
  return rows;
}

class FilterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("filter");
    auto cfg = gen::GeneratorConfig::Tiny();
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline Database* db_ = nullptr;
};

TEST_F(FilterTest, AllFilterSelectsEverything) {
  const MentionFilter all;
  EXPECT_TRUE(all.IsAll());
  const auto rows = SelectMentions(*db_, all);
  EXPECT_EQ(rows.size(), db_->num_mentions());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST_F(FilterTest, TimeWindowMatchesBruteForce) {
  MentionFilter f;
  const std::int64_t span = db_->last_interval() - db_->first_interval();
  f.begin_interval = db_->first_interval() + span / 4;
  f.end_interval = db_->first_interval() + span / 2;
  const auto rows = SelectMentions(*db_, f);
  EXPECT_EQ(rows, BruteForceSelect(*db_, f));
  EXPECT_GT(rows.size(), 0u);
  EXPECT_LT(rows.size(), db_->num_mentions());
}

TEST_F(FilterTest, ConfidenceFilterMatchesBruteForce) {
  MentionFilter f;
  f.min_confidence = 60;
  const auto rows = SelectMentions(*db_, f);
  EXPECT_EQ(rows, BruteForceSelect(*db_, f));
  for (const auto i : rows) {
    EXPECT_GE(db_->mention_confidence()[i], 60);
  }
}

TEST_F(FilterTest, CountryFiltersMatchBruteForce) {
  for (const CountryId c : {country::kUSA, country::kUK, country::kIndia}) {
    MentionFilter pub;
    pub.publisher_country = c;
    EXPECT_EQ(SelectMentions(*db_, pub), BruteForceSelect(*db_, pub));
    MentionFilter loc;
    loc.event_country = c;
    EXPECT_EQ(SelectMentions(*db_, loc), BruteForceSelect(*db_, loc));
  }
}

TEST_F(FilterTest, ConjunctionMatchesBruteForce) {
  MentionFilter f;
  f.publisher_country = country::kUK;
  f.event_country = country::kUSA;
  f.min_confidence = 40;
  f.exclude_orphans = true;
  const auto rows = SelectMentions(*db_, f);
  EXPECT_EQ(rows, BruteForceSelect(*db_, f));
}

TEST_F(FilterTest, ExcludeOrphansDropsOnlyOrphans) {
  MentionFilter f;
  f.exclude_orphans = true;
  const auto rows = SelectMentions(*db_, f);
  std::uint64_t orphans = 0;
  for (const std::uint32_t row : db_->mention_event_row()) {
    if (row == convert::kOrphanEventRow) ++orphans;
  }
  EXPECT_EQ(rows.size() + orphans, db_->num_mentions());
}

TEST_F(FilterTest, FilteredArticlesPerSourceConsistent) {
  MentionFilter f;
  f.publisher_country = country::kUK;
  const auto rows = SelectMentions(*db_, f);
  const auto counts = ArticlesPerSource(*db_, rows);
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < db_->num_sources(); ++s) {
    total += counts[s];
    if (counts[s] > 0) {
      EXPECT_EQ(db_->source_country()[s], country::kUK);
    }
  }
  EXPECT_EQ(total, rows.size());
}

TEST_F(FilterTest, FilteredCrossReportEqualsFullOnAllRows) {
  const auto rows = SelectMentions(*db_, MentionFilter{});
  const auto filtered = CountryCrossReporting(*db_, rows);
  const auto full = CountryCrossReporting(*db_);
  EXPECT_EQ(filtered.counts, full.counts);
  EXPECT_EQ(filtered.articles_per_publisher, full.articles_per_publisher);
}

TEST_F(FilterTest, FilteredQuarterSeriesSumsToSelection) {
  MentionFilter f;
  f.min_confidence = 50;
  const auto rows = SelectMentions(*db_, f);
  const auto series = ArticlesPerQuarter(*db_, rows);
  std::uint64_t sum = 0;
  for (const auto v : series.values) sum += v;
  EXPECT_EQ(sum, rows.size());
}

TEST_F(FilterTest, DistinctEventsBounds) {
  const auto all_rows = SelectMentions(*db_, MentionFilter{});
  const auto distinct = DistinctEvents(*db_, all_rows);
  EXPECT_EQ(distinct, db_->num_events());
  MentionFilter f;
  f.event_country = country::kUSA;
  const auto usa_rows = SelectMentions(*db_, f);
  EXPECT_LE(DistinctEvents(*db_, usa_rows), distinct);
  EXPECT_GT(DistinctEvents(*db_, usa_rows), 0u);
}

/// The filter matrix the golden equivalence suite sweeps: every
/// predicate alone plus the conjunction and the no-op filter.
std::vector<MentionFilter> EquivalenceFilters(const Database& db) {
  std::vector<MentionFilter> filters;
  filters.emplace_back();  // all-pass
  MentionFilter window;
  const std::int64_t span = db.last_interval() - db.first_interval();
  window.begin_interval = db.first_interval() + span / 4;
  window.end_interval = db.first_interval() + span / 2;
  filters.push_back(window);
  MentionFilter confidence;
  confidence.min_confidence = 60;
  filters.push_back(confidence);
  MentionFilter publisher;
  publisher.publisher_country = country::kUK;
  filters.push_back(publisher);
  MentionFilter located;
  located.event_country = country::kUSA;
  filters.push_back(located);
  MentionFilter conjunction;
  conjunction.begin_interval = db.first_interval() + span / 8;
  conjunction.end_interval = db.last_interval() - span / 8;
  conjunction.min_confidence = 40;
  conjunction.publisher_country = country::kUK;
  conjunction.exclude_orphans = true;
  filters.push_back(conjunction);
  MentionFilter none;
  none.begin_interval = db.last_interval() + 1000;
  none.end_interval = db.last_interval() + 2000;
  filters.push_back(none);  // empty result
  return filters;
}

/// Golden equivalence: the vectorized bitmap (SIMD and scalar), the
/// two-pass row baseline, and the brute-force reference all agree.
TEST_F(FilterTest, BitmapMatchesBaselineUnderSimdToggle) {
  const bool saved = SimdEnabled();
  for (const MentionFilter& f : EquivalenceFilters(*db_)) {
    const auto reference = BruteForceSelect(*db_, f);
    const auto baseline = SelectMentionsBaseline(*db_, f);
    EXPECT_EQ(baseline, reference);

    SetSimdEnabled(false);
    const auto scalar = SelectMentionsBitmap(*db_, f);
    SetSimdEnabled(true);
    const auto simd = SelectMentionsBitmap(*db_, f);

    EXPECT_EQ(scalar.words, simd.words);  // bitwise, word for word
    EXPECT_EQ(scalar.num_rows, db_->num_mentions());
    EXPECT_EQ(scalar.CountSet(), reference.size());
    EXPECT_EQ(scalar.ToRows(), reference);
    EXPECT_EQ(SelectMentions(*db_, f), reference);
  }
  SetSimdEnabled(saved);
}

/// Bitmap-consuming aggregates equal the row-vector aggregates over
/// ToRows() for every filter in the matrix.
TEST_F(FilterTest, BitmapAggregatesMatchRowAggregates) {
  for (const MentionFilter& f : EquivalenceFilters(*db_)) {
    const auto sel = SelectMentionsBitmap(*db_, f);
    const auto rows = sel.ToRows();

    EXPECT_EQ(ArticlesPerSource(*db_, sel), ArticlesPerSource(*db_, rows));

    const auto cross_sel = CountryCrossReporting(*db_, sel);
    const auto cross_rows = CountryCrossReporting(*db_, rows);
    EXPECT_EQ(cross_sel.counts, cross_rows.counts);
    EXPECT_EQ(cross_sel.articles_per_publisher,
              cross_rows.articles_per_publisher);

    const auto quarters_sel = ArticlesPerQuarter(*db_, sel);
    const auto quarters_rows = ArticlesPerQuarter(*db_, rows);
    EXPECT_EQ(quarters_sel.first_quarter, quarters_rows.first_quarter);
    EXPECT_EQ(quarters_sel.values, quarters_rows.values);

    EXPECT_EQ(DistinctEvents(*db_, sel), DistinctEvents(*db_, rows));
  }
}

/// Morsel-size extremes cannot change the bitmap (ToRows offsets are
/// keyed by deterministic block ranges, not worker identity).
TEST_F(FilterTest, BitmapInvariantUnderMorselSize) {
  MentionFilter f;
  f.min_confidence = 40;
  const auto reference = SelectMentionsBitmap(*db_, f);
  for (const std::size_t rows : {std::size_t{64}, std::size_t{1} << 22}) {
    parallel::SetMorselRows(rows);
    const auto sel = SelectMentionsBitmap(*db_, f);
    EXPECT_EQ(sel.words, reference.words);
    EXPECT_EQ(sel.ToRows(), reference.ToRows());
  }
  parallel::SetMorselRows(0);
}

TEST(FilterSmallTest, EmptySelection) {
  TempDir dir("filter0");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(100, country::kUSA);
  builder.AddMention(e, 101, "x.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  MentionFilter f;
  f.begin_interval = 99999;
  const auto rows = SelectMentions(*db, f);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(DistinctEvents(*db, rows), 0u);
  const auto counts = ArticlesPerSource(*db, rows);
  EXPECT_EQ(counts[0], 0u);
  const auto sel = SelectMentionsBitmap(*db, f);
  EXPECT_EQ(sel.CountSet(), 0u);
  EXPECT_EQ(DistinctEvents(*db, sel), 0u);
}

/// 67 mentions: one full bitmap word plus a 3-bit tail. Exercises the
/// scalar tail kernels and the tail-masking invariant on a database far
/// smaller than one morsel.
TEST(FilterSmallTest, UnalignedTailBitmap) {
  TempDir dir("filter_tail");
  TestDbBuilder builder;
  constexpr int kMentions = 67;
  for (int i = 0; i < kMentions; ++i) {
    const auto e =
        builder.AddEvent(100 + i, i % 2 == 0 ? country::kUSA : country::kUK);
    builder.AddMention(e, 101 + i, "s" + std::to_string(i % 5) + ".com",
                       static_cast<std::uint8_t>(i % 100));
  }
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_mentions(), static_cast<std::uint64_t>(kMentions));

  // All-pass: every bit set, tail bits beyond row 66 clear.
  const auto all = SelectMentionsBitmap(*db, MentionFilter{});
  ASSERT_EQ(all.words.size(), 2u);
  EXPECT_EQ(all.words[0], ~std::uint64_t{0});
  EXPECT_EQ(all.words[1], (std::uint64_t{1} << (kMentions - 64)) - 1);
  EXPECT_EQ(all.CountSet(), static_cast<std::uint64_t>(kMentions));

  // A confidence cut that crosses the word boundary: equivalence against
  // the row baseline, including rows in the tail word.
  const bool saved = SimdEnabled();
  MentionFilter f;
  f.min_confidence = 50;
  const auto baseline = SelectMentionsBaseline(*db, f);
  for (const bool simd : {false, true}) {
    SetSimdEnabled(simd);
    const auto sel = SelectMentionsBitmap(*db, f);
    EXPECT_EQ(sel.ToRows(), baseline);
    EXPECT_EQ(sel.words[1] >> (kMentions - 64), 0u);  // tail stays clear
  }
  SetSimdEnabled(saved);
}

}  // namespace
}  // namespace gdelt::engine
