#include "convert/converter.hpp"

#include <gtest/gtest.h>

#include "convert/master_list.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/crc32.hpp"
#include "io/fault.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"
#include "util/strings.hpp"

namespace gdelt::convert {
namespace {

using ::gdelt::testing::TempDir;

TEST(MasterListTest, ParsesWellFormedEntries) {
  const MasterList list = ParseMasterList(
      "123 0000abcd 20150218000000.export.CSV.zip\n"
      "456 DEADBEEF 20150218000000.mentions.CSV.zip\n"
      "789 12345678 readme.txt\n");
  ASSERT_EQ(list.entries.size(), 3u);
  EXPECT_EQ(list.malformed_entries, 0u);
  EXPECT_EQ(list.entries[0].size, 123u);
  EXPECT_EQ(list.entries[0].crc32, 0x0000ABCDu);
  EXPECT_EQ(list.entries[0].kind, ArchiveKind::kExport);
  EXPECT_EQ(list.entries[1].crc32, 0xDEADBEEFu);
  EXPECT_EQ(list.entries[1].kind, ArchiveKind::kMentions);
  EXPECT_EQ(list.entries[2].kind, ArchiveKind::kOther);
}

TEST(MasterListTest, CountsMalformedEntries) {
  const MasterList list = ParseMasterList(
      "garbage\n"                                   // 1 field
      "12 deadbeef\n"                               // 2 fields
      "notanum ffff0000 x.zip\n"                    // bad size
      "12 nothex00x x.zip\n"                        // bad crc chars
      "12 abc x.zip\n"                              // crc too short
      "5 00000000 ok.export.CSV.zip\n"              // fine
      "\n"                                          // blank: ignored
      "1 2 3 4\n");                                 // 4 fields
  EXPECT_EQ(list.entries.size(), 1u);
  EXPECT_EQ(list.malformed_entries, 6u);
  EXPECT_LE(list.malformed_samples.size(), 10u);
  EXPECT_FALSE(list.malformed_samples.empty());
}

TEST(MasterListTest, ClassifyArchive) {
  EXPECT_EQ(ClassifyArchive("a.export.CSV.zip"), ArchiveKind::kExport);
  EXPECT_EQ(ClassifyArchive("a.mentions.CSV.zip"), ArchiveKind::kMentions);
  EXPECT_EQ(ClassifyArchive("a.gkg.csv.zip"), ArchiveKind::kOther);
}

class ConvertedTinyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("convert");
    cfg_ = gen::GeneratorConfig::Tiny();
    dataset_ = new gen::RawDataset(gen::GenerateDataset(cfg_));
    auto emitted = gen::EmitDataset(*dataset_, cfg_, dirs_->path() + "/raw");
    ASSERT_TRUE(emitted.ok());
    emitted_ = new gen::EmitResult(*emitted);
    ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    auto report = ConvertDataset(options);
    ASSERT_TRUE(report.ok());
    report_ = new ConvertReport(*report);
  }
  static void TearDownTestSuite() {
    delete report_;
    delete emitted_;
    delete dataset_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline gen::GeneratorConfig cfg_;
  static inline gen::RawDataset* dataset_ = nullptr;
  static inline gen::EmitResult* emitted_ = nullptr;
  static inline ConvertReport* report_ = nullptr;
};

TEST_F(ConvertedTinyTest, RowTotalsMatchGroundTruth) {
  EXPECT_EQ(report_->event_rows,
            dataset_->truth.num_events - emitted_->dropped_events);
  EXPECT_EQ(report_->mention_rows,
            dataset_->truth.num_mentions - emitted_->dropped_mentions);
  EXPECT_GT(report_->num_sources, 0u);
  EXPECT_LE(report_->num_sources, cfg_.num_sources);
}

TEST_F(ConvertedTinyTest, TableTwoDefectsRediscovered) {
  EXPECT_EQ(report_->malformed_master_entries,
            cfg_.defect_malformed_master_entries);
  EXPECT_EQ(report_->missing_archives, cfg_.defect_missing_archives);
  EXPECT_EQ(report_->missing_event_source_url,
            cfg_.defect_missing_source_url);
  // Future-dated events are only discoverable if their event row survived
  // the missing archive; tolerate <= injected.
  EXPECT_LE(report_->future_event_dates, cfg_.defect_future_event_dates);
  EXPECT_GE(report_->future_event_dates, 1u);
  EXPECT_EQ(report_->corrupt_archives, 0u);
  EXPECT_EQ(report_->malformed_rows, 0u);
}

TEST_F(ConvertedTinyTest, OrphansComeFromMissingChunk) {
  // Mentions of events whose event row was dropped with the missing chunk.
  EXPECT_GT(report_->orphan_mentions, 0u);
}

TEST_F(ConvertedTinyTest, WritesAllOutputFiles) {
  const std::string out = dirs_->path() + "/db";
  EXPECT_TRUE(FileExists(out + "/events.tbl"));
  EXPECT_TRUE(FileExists(out + "/mentions.tbl"));
  EXPECT_TRUE(FileExists(out + "/sources.dict"));
  EXPECT_TRUE(FileExists(out + "/convert_report.txt"));
  const auto report_text = ReadWholeFile(out + "/convert_report.txt");
  ASSERT_TRUE(report_text.ok());
  EXPECT_NE(report_text->find("missing archives"), std::string::npos);
}

TEST(ConvertErrorsTest, MissingMasterListFails) {
  TempDir dir("nomaster");
  ConvertOptions options;
  options.input_dir = dir.path();
  options.output_dir = dir.path() + "/db";
  EXPECT_EQ(ConvertDataset(options).status().code(), StatusCode::kIoError);
}

TEST(ConvertErrorsTest, CorruptArchiveCountedNotFatal) {
  TempDir dir("corrupt");
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto ds = gen::GenerateDataset(cfg);
  auto emitted = gen::EmitDataset(ds, cfg, dir.path() + "/raw");
  ASSERT_TRUE(emitted.ok());
  // Corrupt the first listed export archive on disk.
  const auto master = ReadWholeFile(dir.path() + "/raw/masterfilelist.txt");
  ASSERT_TRUE(master.ok());
  const MasterList list = ParseMasterList(*master);
  const std::string victim =
      dir.path() + "/raw/" + list.entries.front().file_name;
  auto bytes = ReadWholeFile(victim);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0xFF;
  ASSERT_TRUE(WriteWholeFile(victim, *bytes).ok());

  ConvertOptions options;
  options.input_dir = dir.path() + "/raw";
  options.output_dir = dir.path() + "/db";
  const auto report = ConvertDataset(options);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->corrupt_archives, 1u);
}

TEST(ConvertErrorsTest, MalformedRowsCounted) {
  TempDir dir("badrows");
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto ds = gen::GenerateDataset(cfg);
  ASSERT_TRUE(gen::EmitDataset(ds, cfg, dir.path() + "/raw").ok());
  // Append an extra archive with malformed rows and list it in the master.
  const std::string bad_csv = "not\tenough\tfields\n";
  ZipWriter zip;
  const std::string zip_path =
      dir.path() + "/raw/20990101000000.export.CSV.zip";
  ASSERT_TRUE(zip.Open(zip_path).ok());
  ASSERT_TRUE(zip.AddEntry("20990101000000.export.CSV", bad_csv).ok());
  ASSERT_TRUE(zip.Finish().ok());
  auto zip_bytes = ReadWholeFile(zip_path);
  ASSERT_TRUE(zip_bytes.ok());
  auto master = ReadWholeFile(dir.path() + "/raw/masterfilelist.txt");
  ASSERT_TRUE(master.ok());
  *master += StrFormat("%zu %08x 20990101000000.export.CSV.zip\n",
                       zip_bytes->size(), Crc32(*zip_bytes));
  ASSERT_TRUE(
      WriteWholeFile(dir.path() + "/raw/masterfilelist.txt", *master).ok());

  ConvertOptions options;
  options.input_dir = dir.path() + "/raw";
  options.output_dir = dir.path() + "/db";
  const auto report = ConvertDataset(options);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->malformed_rows, 1u);
}

/// Fixture for the crash/resume equivalence tests: one emitted raw
/// dataset, one uninterrupted reference conversion to compare against,
/// and a conversion aborted mid-run by a fault-injected torn write.
class ConvertResumeTest : public ::testing::Test {
 protected:
  static constexpr const char* kTables[] = {"events.tbl", "mentions.tbl",
                                            "sources.dict"};

  static void SetUpTestSuite() {
    dirs_ = new TempDir("resume");
    const auto cfg = gen::GeneratorConfig::Tiny();
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());
    ConvertOptions reference;
    reference.input_dir = dirs_->path() + "/raw";
    reference.output_dir = dirs_->path() + "/ref";
    ASSERT_TRUE(ConvertDataset(reference).ok());
  }
  static void TearDownTestSuite() {
    delete dirs_;
    dirs_ = nullptr;
  }

  static ConvertOptions Options(const std::string& out) {
    ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/out_" + out;
    return options;
  }

  /// Runs a conversion that dies on a torn write mid-way through the
  /// archive loop, leaving a journal and some settled spills behind.
  static void RunInterrupted(const ConvertOptions& options) {
    fault::ScopedFaultInjection guard("write@200");
    const auto report = ConvertDataset(options);
    ASSERT_FALSE(report.ok());
    ASSERT_TRUE(FileExists(options.output_dir + "/convert.journal"));
  }

  static void ExpectTablesMatchReference(const std::string& out_dir) {
    for (const char* table : kTables) {
      const auto expected = ReadWholeFile(dirs_->path() + "/ref/" + table);
      const auto actual = ReadWholeFile(out_dir + "/" + table);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok()) << table;
      EXPECT_TRUE(*expected == *actual)
          << table << " differs from the uninterrupted conversion";
    }
  }

  static inline TempDir* dirs_ = nullptr;
};

TEST_F(ConvertResumeTest, ResumeAfterAbortIsByteIdentical) {
  ConvertOptions options = Options("resume");
  RunInterrupted(options);

  options.resume = true;
  const auto resumed = ConvertDataset(options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_GT(resumed->resumed_archives, 0u);
  ExpectTablesMatchReference(options.output_dir);
  // Success retires the journal; nothing is left to confuse a later run.
  EXPECT_FALSE(FileExists(options.output_dir + "/convert.journal"));
}

TEST_F(ConvertResumeTest, FreshRunIgnoresStaleJournal) {
  ConvertOptions options = Options("fresh");
  RunInterrupted(options);

  // Without --resume the journal is discarded and every archive reruns.
  const auto report = ConvertDataset(options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->resumed_archives, 0u);
  ExpectTablesMatchReference(options.output_dir);
}

TEST_F(ConvertResumeTest, ResumeAgainstDifferentInputStartsFresh) {
  ConvertOptions options = Options("mismatch");
  RunInterrupted(options);

  // Regenerate the input with another seed: the journal's master-list
  // checksum no longer matches, so resuming must not trust it.
  auto cfg = gen::GeneratorConfig::Tiny();
  cfg.seed = 777;
  const auto dataset = gen::GenerateDataset(cfg);
  const std::string other_raw = dirs_->path() + "/raw_other";
  ASSERT_TRUE(gen::EmitDataset(dataset, cfg, other_raw).ok());

  options.input_dir = other_raw;
  options.resume = true;
  const auto report = ConvertDataset(options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->resumed_archives, 0u);
}

}  // namespace
}  // namespace gdelt::convert
