#include <gtest/gtest.h>

#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/mmap.hpp"
#include "util/strings.hpp"
#include "test_util.hpp"

namespace gdelt {
namespace {

using testing::TempDir;

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 test vectors.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::uint32_t crc = 0;
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, Crc32(data));
}

TEST(FileTest, WriteReadWholeFile) {
  TempDir dir("file");
  const std::string path = dir.path() + "/x.bin";
  const std::string payload = std::string("hello\0world", 11);
  ASSERT_TRUE(WriteWholeFile(path, payload).ok());
  ASSERT_TRUE(FileExists(path));
  const auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());
  const auto read = ReadWholeFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(FileTest, MissingFileErrors) {
  EXPECT_FALSE(FileExists("/nonexistent/path/file"));
  EXPECT_EQ(ReadWholeFile("/nonexistent/path/file").status().code(),
            StatusCode::kIoError);
  EXPECT_FALSE(FileSize("/nonexistent/path/file").ok());
}

TEST(FileTest, ListDirectorySorted) {
  TempDir dir("list");
  ASSERT_TRUE(WriteWholeFile(dir.path() + "/b.txt", "b").ok());
  ASSERT_TRUE(WriteWholeFile(dir.path() + "/a.txt", "a").ok());
  const auto files = ListDirectoryFiles(dir.path());
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_TRUE(EndsWith((*files)[0], "a.txt"));
  EXPECT_TRUE(EndsWith((*files)[1], "b.txt"));
  EXPECT_FALSE(ListDirectoryFiles(dir.path() + "/nope").ok());
}

TEST(BinaryWriterTest, PodAndStringRoundTrip) {
  TempDir dir("writer");
  const std::string path = dir.path() + "/t.bin";
  BinaryWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.WritePod(std::uint32_t{0xDEADBEEF}).ok());
  ASSERT_TRUE(w.WritePod(std::int64_t{-5}).ok());
  ASSERT_TRUE(w.WriteString("hello").ok());
  EXPECT_EQ(w.offset(), 4u + 8u + 4u + 5u);
  ASSERT_TRUE(w.Close().ok());

  const auto data = ReadWholeFile(path);
  ASSERT_TRUE(data.ok());
  BinaryReader r(data->data(), data->size());
  std::uint32_t u = 0;
  std::int64_t i = 0;
  std::string s;
  ASSERT_TRUE(r.ReadPod(u).ok());
  ASSERT_TRUE(r.ReadPod(i).ok());
  ASSERT_TRUE(r.ReadString(s).ok());
  EXPECT_EQ(u, 0xDEADBEEFu);
  EXPECT_EQ(i, -5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryReaderTest, OverrunIsDataLoss) {
  const char buf[4] = {1, 2, 3, 4};
  BinaryReader r(buf, sizeof(buf));
  std::uint64_t v = 0;
  EXPECT_EQ(r.ReadPod(v).code(), StatusCode::kDataLoss);
  // A failed read leaves the cursor usable for smaller reads.
  std::uint32_t u = 0;
  EXPECT_TRUE(r.ReadPod(u).ok());
}

TEST(BinaryReaderTest, StringLengthBeyondInput) {
  // Length prefix says 100 bytes but only 2 remain.
  const unsigned char buf[6] = {100, 0, 0, 0, 'a', 'b'};
  BinaryReader r(buf, sizeof(buf));
  std::string s;
  EXPECT_EQ(r.ReadString(s).code(), StatusCode::kDataLoss);
}

TEST(BinaryReaderTest, SeekAndSkip) {
  const char buf[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  BinaryReader r(buf, sizeof(buf));
  ASSERT_TRUE(r.Skip(3).ok());
  EXPECT_EQ(r.offset(), 3u);
  ASSERT_TRUE(r.SeekTo(6).ok());
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.SeekTo(9).ok());
  EXPECT_FALSE(r.Skip(5).ok());
}

TEST(MmapTest, MapsFileContents) {
  TempDir dir("mmap");
  const std::string path = dir.path() + "/m.bin";
  const std::string payload(10000, 'x');
  ASSERT_TRUE(WriteWholeFile(path, payload).ok());
  auto mapped = MemoryMappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->view(), payload);
}

TEST(MmapTest, EmptyFile) {
  TempDir dir("mmap0");
  const std::string path = dir.path() + "/e.bin";
  ASSERT_TRUE(WriteWholeFile(path, "").ok());
  auto mapped = MemoryMappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->size(), 0u);
}

TEST(MmapTest, MissingFileFails) {
  EXPECT_FALSE(MemoryMappedFile::Open("/no/such/file").ok());
}

TEST(MmapTest, MoveTransfersOwnership) {
  TempDir dir("mmapmv");
  const std::string path = dir.path() + "/m.bin";
  ASSERT_TRUE(WriteWholeFile(path, "abc").ok());
  auto a = MemoryMappedFile::Open(path);
  ASSERT_TRUE(a.ok());
  MemoryMappedFile b = std::move(*a);
  EXPECT_EQ(b.view(), "abc");
}

}  // namespace
}  // namespace gdelt
