// Cancellation stress tests for the morsel pool, in the mold of
// morsel_pool_stress_test: jobs racing Cancel() from another thread must
// still complete exactly once (the caller always returns), never touch an
// index twice, and account every morsel as either executed or skipped.
// Runs under TSan in CI — the token is all-atomics and the pool's
// completion accounting must stay race-free while cancels land mid-job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/morsel.hpp"
#include "util/cancel.hpp"

namespace gdelt::parallel {
namespace {

TEST(MorselPoolCancelStressTest, PreCancelledJobSkipsEveryMorsel) {
  MorselPool pool(2);
  util::CancelToken token;
  token.Cancel(util::CancelReason::kRouter);
  std::atomic<std::uint64_t> executed{0};
  const bool admitted = pool.ParallelFor(
      /*n=*/512,
      [&](IndexRange, std::size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
      },
      /*morsel_rows=*/32, &token);
  (void)admitted;  // either way the call must return with nothing run
  EXPECT_EQ(executed.load(), 0u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.morsels, 0u);
  EXPECT_EQ(stats.morsels_skipped, 512u / 32u);
}

TEST(MorselPoolCancelStressTest, CancelAfterCompletionIsANoop) {
  MorselPool pool(2);
  util::CancelToken token;
  std::vector<std::atomic<std::uint32_t>> touched(1024);
  pool.ParallelFor(
      touched.size(),
      [&](IndexRange r, std::size_t) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          touched[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*morsel_rows=*/64, &token);
  token.Cancel(util::CancelReason::kRouter);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i].load(std::memory_order_relaxed), 1u) << i;
  }
  EXPECT_EQ(pool.stats().morsels_skipped, 0u);
}

TEST(MorselPoolCancelStressTest, ArmedDeadlineAbortsMidJob) {
  MorselPool pool(2);
  util::CancelToken token;
  token.ArmDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(5));
  std::atomic<std::uint64_t> executed{0};
  constexpr std::size_t kMorsels = 512;
  // ~500us per morsel: running all of them would take far longer than the
  // 5ms deadline even with every worker helping, so the pool must start
  // draining morsels as skips once the deadline latches.
  pool.ParallelFor(
      kMorsels,
      [&](IndexRange, std::size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      },
      /*morsel_rows=*/1, &token);
  const auto stats = pool.stats();
  EXPECT_GT(stats.morsels_skipped, 0u);
  EXPECT_EQ(stats.morsels + stats.morsels_skipped, kMorsels);
  EXPECT_EQ(token.reason(), util::CancelReason::kDeadline);
}

TEST(MorselPoolCancelStressTest, SubmitRacingCancel) {
  constexpr int kRounds = 8;
  constexpr int kSubmitters = 4;
  constexpr int kJobsPerSubmitter = 6;
  constexpr std::size_t kN = 512;
  constexpr std::size_t kRows = 32;
  constexpr std::size_t kMorselsPerJob = kN / kRows;
  constexpr int kJobs = kSubmitters * kJobsPerSubmitter;

  for (int round = 0; round < kRounds; ++round) {
    MorselPool pool(2);
    std::vector<std::unique_ptr<util::CancelToken>> tokens;
    tokens.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      tokens.push_back(std::make_unique<util::CancelToken>());
    }
    // A couple of tokens are cancelled before any job starts so at least
    // some jobs deterministically skip everything; the canceller thread
    // races the rest against in-flight execution.
    tokens[0]->Cancel(util::CancelReason::kRouter);
    tokens[kJobs / 2]->Cancel(util::CancelReason::kDisconnect);

    std::atomic<int> jobs_returned{0};
    std::thread canceller([&tokens] {
      for (std::size_t i = 1; i < tokens.size(); i += 2) {
        tokens[i]->Cancel(util::CancelReason::kRouter);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int j = 0; j < kJobsPerSubmitter; ++j) {
          util::CancelToken* token =
              tokens[static_cast<std::size_t>(t * kJobsPerSubmitter + j)]
                  .get();
          std::vector<std::atomic<std::uint32_t>> touched(kN);
          pool.ParallelFor(
              kN,
              [&](IndexRange r, std::size_t) {
                for (std::size_t i = r.begin; i < r.end; ++i) {
                  touched[i].fetch_add(1, std::memory_order_relaxed);
                }
              },
              kRows, token);
          // Cancelled or not, no index runs twice; the job ended exactly
          // once (this line being reached is the "once").
          for (std::size_t i = 0; i < kN; ++i) {
            ASSERT_LE(touched[i].load(std::memory_order_relaxed), 1u)
                << "round " << round << " index " << i;
          }
          jobs_returned.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : submitters) t.join();
    canceller.join();

    EXPECT_EQ(jobs_returned.load(), kJobs) << "round " << round;
    const auto stats = pool.stats();
    // Every submitted job completed exactly once, somewhere.
    EXPECT_EQ(stats.jobs + stats.inline_jobs,
              static_cast<std::uint64_t>(kJobs))
        << "round " << round;
    // Exact morsel conservation: each morsel either executed or was
    // drained as a skip, never both, never lost.
    EXPECT_EQ(stats.morsels + stats.morsels_skipped,
              static_cast<std::uint64_t>(kJobs) * kMorselsPerJob)
        << "round " << round;
    // The pre-cancelled jobs guarantee observable skips.
    EXPECT_GE(stats.morsels_skipped, 2u * kMorselsPerJob)
        << "round " << round;
  }
}

}  // namespace
}  // namespace gdelt::parallel
