#include "io/zipstore.hpp"

#include <gtest/gtest.h>

#include "io/file.hpp"
#include "test_util.hpp"

namespace gdelt {
namespace {

using testing::TempDir;

std::string MakeArchive(const TempDir& dir,
                        const std::vector<std::pair<std::string, std::string>>&
                            entries) {
  const std::string path = dir.path() + "/a.zip";
  ZipWriter writer;
  EXPECT_TRUE(writer.Open(path).ok());
  for (const auto& [name, data] : entries) {
    EXPECT_TRUE(writer.AddEntry(name, data).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  auto bytes = ReadWholeFile(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(ZipTest, RoundTripSingleEntry) {
  TempDir dir("zip1");
  const std::string bytes =
      MakeArchive(dir, {{"20150218000000.export.CSV", "row1\trow2\n"}});
  auto reader = ZipReader::Open(bytes);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->entries().size(), 1u);
  EXPECT_EQ(reader->entries()[0].name, "20150218000000.export.CSV");
  const auto data = reader->ReadEntry("20150218000000.export.CSV");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "row1\trow2\n");
}

TEST(ZipTest, RoundTripMultipleEntriesAndBinary) {
  TempDir dir("zipN");
  std::string binary(1000, '\0');
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<char>(i * 13);
  }
  const std::string bytes =
      MakeArchive(dir, {{"a.csv", "aaa"}, {"b.csv", binary}, {"c.csv", ""}});
  auto reader = ZipReader::Open(bytes);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->entries().size(), 3u);
  EXPECT_EQ(*reader->ReadEntry("a.csv"), "aaa");
  EXPECT_EQ(*reader->ReadEntry("b.csv"), binary);
  EXPECT_EQ(*reader->ReadEntry("c.csv"), "");
  EXPECT_EQ(*reader->ReadEntry(std::size_t{1}), binary);
}

TEST(ZipTest, MissingEntryIsNotFound) {
  TempDir dir("zipm");
  const std::string bytes = MakeArchive(dir, {{"a.csv", "x"}});
  auto reader = ZipReader::Open(bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadEntry("b.csv").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reader->ReadEntry(std::size_t{5}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ZipTest, DuplicateEntryRejectedAtFinish) {
  TempDir dir("zipd");
  ZipWriter writer;
  ASSERT_TRUE(writer.Open(dir.path() + "/d.zip").ok());
  ASSERT_TRUE(writer.AddEntry("x", "1").ok());
  ASSERT_TRUE(writer.AddEntry("x", "2").ok());
  EXPECT_EQ(writer.Finish().code(), StatusCode::kAlreadyExists);
}

TEST(ZipTest, CorruptPayloadFailsCrc) {
  TempDir dir("zipc");
  std::string bytes = MakeArchive(dir, {{"a.csv", "hello world"}});
  // Flip a byte inside the stored payload (after the 30-byte local header
  // and the 5-byte name).
  bytes[30 + 5 + 2] ^= 0x01;
  auto reader = ZipReader::Open(bytes);
  ASSERT_TRUE(reader.ok());  // central directory still fine
  EXPECT_EQ(reader->ReadEntry("a.csv").status().code(), StatusCode::kDataLoss);
}

TEST(ZipTest, TruncatedArchiveFails) {
  TempDir dir("zipt");
  const std::string bytes = MakeArchive(dir, {{"a.csv", "data"}});
  EXPECT_FALSE(ZipReader::Open(bytes.substr(0, bytes.size() - 10)).ok());
  EXPECT_FALSE(ZipReader::Open(bytes.substr(0, 5)).ok());
  EXPECT_FALSE(ZipReader::Open("").ok());
}

TEST(ZipTest, GarbageIsRejected) {
  const std::string garbage(100, 'g');
  EXPECT_EQ(ZipReader::Open(garbage).status().code(), StatusCode::kDataLoss);
}

TEST(ZipTest, EmptyArchiveRoundTrips) {
  TempDir dir("zip0");
  const std::string bytes = MakeArchive(dir, {});
  auto reader = ZipReader::Open(bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->entries().empty());
}

TEST(ZipTest, RejectsEmptyName) {
  TempDir dir("zipe");
  ZipWriter writer;
  ASSERT_TRUE(writer.Open(dir.path() + "/e.zip").ok());
  EXPECT_EQ(writer.AddEntry("", "x").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gdelt
