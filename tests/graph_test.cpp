#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/matrix.hpp"
#include "graph/mcl.hpp"
#include "util/rng.hpp"

namespace gdelt::graph {
namespace {

DenseMatrix RandomDense(std::size_t r, std::size_t c, double density,
                        Xoshiro256& rng) {
  DenseMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (UniformDouble(rng) < density) {
        m.At(i, j) = UniformDouble(rng) * 10.0;
      }
    }
  }
  return m;
}

DenseMatrix MultiplyDense(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a.At(i, k);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.At(i, j) += av * b.At(k, j);
      }
    }
  }
  return out;
}

TEST(MatrixTest, DenseSparseRoundTrip) {
  Xoshiro256 rng(5);
  const DenseMatrix dense = RandomDense(20, 30, 0.2, rng);
  const SparseMatrix sparse = DenseToSparse(dense);
  const DenseMatrix back = SparseToDense(sparse);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_DOUBLE_EQ(back.At(i, j), dense.At(i, j));
    }
  }
}

TEST(MatrixTest, SparseThresholdDropsSmallEntries) {
  DenseMatrix dense(2, 2);
  dense.At(0, 0) = 0.5;
  dense.At(0, 1) = 1e-9;
  dense.At(1, 1) = -2.0;
  const SparseMatrix sparse = DenseToSparse(dense, 1e-6);
  EXPECT_EQ(sparse.nnz(), 2u);
}

TEST(MatrixTest, SparseMultiplyMatchesDense) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const DenseMatrix a = RandomDense(15, 12, 0.3, rng);
    const DenseMatrix b = RandomDense(12, 18, 0.3, rng);
    const DenseMatrix expected = MultiplyDense(a, b);
    const SparseMatrix got = Multiply(DenseToSparse(a), DenseToSparse(b));
    const DenseMatrix got_dense = SparseToDense(got);
    for (std::size_t i = 0; i < expected.rows(); ++i) {
      for (std::size_t j = 0; j < expected.cols(); ++j) {
        EXPECT_NEAR(got_dense.At(i, j), expected.At(i, j), 1e-9);
      }
    }
  }
}

TEST(MatrixTest, NormalizeRowsMakesStochastic) {
  Xoshiro256 rng(9);
  DenseMatrix dense = RandomDense(10, 10, 0.4, rng);
  for (std::size_t j = 0; j < 10; ++j) dense.At(3, j) = 0.0;  // zero row
  SparseMatrix m = DenseToSparse(dense);
  NormalizeRows(m);
  for (std::size_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      EXPECT_GE(m.values[k], 0.0);
      sum += m.values[k];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "row " << r;
  }
}

TEST(MatrixTest, FrobeniusDistanceProperties) {
  Xoshiro256 rng(11);
  const DenseMatrix dense = RandomDense(8, 8, 0.5, rng);
  const SparseMatrix a = DenseToSparse(dense);
  EXPECT_DOUBLE_EQ(FrobeniusDistance(a, a), 0.0);
  DenseMatrix shifted = dense;
  shifted.At(2, 3) += 1.5;
  shifted.At(7, 0) -= 2.0;
  const SparseMatrix b = DenseToSparse(shifted);
  EXPECT_NEAR(FrobeniusDistance(a, b), std::sqrt(1.5 * 1.5 + 4.0), 1e-9);
  EXPECT_NEAR(FrobeniusDistance(a, b), FrobeniusDistance(b, a), 1e-12);
}

/// Builds a planted-partition similarity: dense blocks on the diagonal,
/// sparse weak noise across blocks.
SparseMatrix PlantedPartition(const std::vector<std::size_t>& block_sizes,
                              Xoshiro256& rng) {
  std::size_t n = 0;
  for (const auto s : block_sizes) n += s;
  DenseMatrix dense(n, n);
  std::size_t at = 0;
  for (const auto size : block_sizes) {
    for (std::size_t i = at; i < at + size; ++i) {
      for (std::size_t j = at; j < at + size; ++j) {
        if (i != j) dense.At(i, j) = 0.8 + 0.2 * UniformDouble(rng);
      }
    }
    at += size;
  }
  // Weak inter-block noise.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense.At(i, j) == 0.0 && i != j && UniformDouble(rng) < 0.05) {
        dense.At(i, j) = 0.02;
        dense.At(j, i) = 0.02;
      }
    }
  }
  return DenseToSparse(dense);
}

TEST(MclTest, RecoversPlantedClusters) {
  Xoshiro256 rng(13);
  const std::vector<std::size_t> blocks{8, 12, 10};
  const SparseMatrix sim = PlantedPartition(blocks, rng);
  const MclResult result = MarkovCluster(sim);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.num_clusters, 3u);
  // All members of a block share a label; different blocks differ.
  std::size_t at = 0;
  std::set<std::uint32_t> labels;
  for (const auto size : blocks) {
    const std::uint32_t label = result.cluster[at];
    for (std::size_t i = at; i < at + size; ++i) {
      EXPECT_EQ(result.cluster[i], label) << "node " << i;
    }
    EXPECT_TRUE(labels.insert(label).second);
    at += size;
  }
}

TEST(MclTest, IdentityLikeInputYieldsSingletons) {
  // No similarity at all: every node is its own cluster.
  DenseMatrix dense(6, 6);
  const SparseMatrix sim = DenseToSparse(dense);
  const MclResult result = MarkovCluster(sim);
  EXPECT_EQ(result.num_clusters, 6u);
}

TEST(MclTest, SingleBlockIsOneCluster) {
  Xoshiro256 rng(17);
  const SparseMatrix sim = PlantedPartition({15}, rng);
  const MclResult result = MarkovCluster(sim);
  EXPECT_EQ(result.num_clusters, 1u);
}

TEST(MclTest, HigherInflationNeverCoarsens) {
  Xoshiro256 rng(19);
  const SparseMatrix sim = PlantedPartition({6, 6}, rng);
  MclOptions fine;
  fine.inflation = 4.0;
  MclOptions coarse;
  coarse.inflation = 1.4;
  const auto fine_result = MarkovCluster(sim, fine);
  const auto coarse_result = MarkovCluster(sim, coarse);
  EXPECT_GE(fine_result.num_clusters, coarse_result.num_clusters);
}

}  // namespace
}  // namespace gdelt::graph
