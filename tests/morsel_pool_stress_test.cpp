// Stress tests for the morsel-driven work-stealing pool, modeled on
// scheduler_stress_test: the submit-racing-shutdown invariant (every
// ParallelFor covers its whole range exactly once, on the pool or
// inline), steal-count sanity, nested-call inlining, and the starvation
// check the two priority lanes exist for (a small interactive job
// finishes while a saturating batch job is still in flight).
//
// Private pools are used throughout: the shared pool is sized by
// MaxThreads() and owns process-global counters, so these tests spawn
// their own workers for deterministic worker counts on any host.
#include "parallel/morsel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace gdelt::parallel {
namespace {

/// Runs one ParallelFor over `n` indices with per-index touch counts and
/// asserts exactly-once coverage regardless of the admission result.
void RunCovered(MorselPool& pool, std::size_t n, std::size_t morsel_rows) {
  std::vector<std::atomic<std::uint32_t>> touched(n);
  const bool admitted = pool.ParallelFor(
      n,
      [&](IndexRange r, std::size_t) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          touched[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      morsel_rows);
  // All-or-nothing: admitted jobs run on the pool, rejected jobs run
  // inline on the caller, but every index is covered exactly once.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(std::memory_order_relaxed), 1u)
        << "index " << i << " admitted=" << admitted;
  }
}

TEST(MorselPoolStressTest, SubmitRacingShutdown) {
  constexpr int kRounds = 12;
  constexpr int kSubmitters = 4;
  constexpr int kJobsPerSubmitter = 8;
  for (int round = 0; round < kRounds; ++round) {
    MorselPool pool(2);
    std::atomic<int> started{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&pool, &started] {
        for (int j = 0; j < kJobsPerSubmitter; ++j) {
          started.fetch_add(1, std::memory_order_relaxed);
          RunCovered(pool, /*n=*/512, /*morsel_rows=*/64);
        }
      });
    }
    // Shut down mid-stream: some jobs land on the pool, the rest must
    // fall back to inline execution without losing or repeating work.
    while (started.load(std::memory_order_relaxed) <
           kSubmitters * kJobsPerSubmitter / 2) {
      std::this_thread::yield();
    }
    pool.Shutdown();
    for (auto& t : submitters) t.join();
    const auto stats = pool.stats();
    EXPECT_EQ(stats.jobs + stats.inline_jobs,
              static_cast<std::uint64_t>(kSubmitters * kJobsPerSubmitter))
        << "round " << round;
  }
}

TEST(MorselPoolStressTest, ConcurrentShutdownsAreIdempotent) {
  MorselPool pool(2);
  RunCovered(pool, 1024, 64);
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (auto& t : closers) t.join();
  // Post-shutdown submission still covers its range (inline).
  RunCovered(pool, 256, 64);
}

TEST(MorselPoolStressTest, StealCountSanity) {
  // Morsels are distributed round-robin, so steals only happen when one
  // worker runs dry while another still has queue — guaranteed
  // eventually under OS scheduling jitter, not per round. Loop rounds
  // until a steal is observed; sleeping morsels make the window wide.
  bool stole = false;
  for (int round = 0; round < 50 && !stole; ++round) {
    MorselPool pool(4);
    for (int job = 0; job < 4; ++job) {
      pool.ParallelFor(
          /*n=*/128,
          [](IndexRange, std::size_t) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          },
          /*morsel_rows=*/1);
    }
    const auto stats = pool.stats();
    EXPECT_EQ(stats.morsels, 4u * 128u) << "round " << round;
    EXPECT_LE(stats.steals, stats.morsels);
    stole = stats.steals > 0;
  }
  EXPECT_TRUE(stole) << "no steal observed in 50 rounds of 4 workers";
}

TEST(MorselPoolStressTest, NestedParallelForRunsInline) {
  MorselPool pool(2);
  std::atomic<std::uint64_t> total{0};
  pool.ParallelFor(
      /*n=*/32,
      [&](IndexRange r, std::size_t) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          // A migrated kernel calling another migrated kernel must not
          // deadlock a small pool; the inner job runs serially on the
          // slot this thread already holds.
          std::uint64_t inner = 0;
          pool.ParallelFor(
              /*n=*/64,
              [&inner](IndexRange rr, std::size_t) {
                for (std::size_t k = rr.begin; k < rr.end; ++k) inner += k;
              },
              /*morsel_rows=*/16);
          EXPECT_EQ(inner, 64u * 63u / 2);
          total.fetch_add(inner, std::memory_order_relaxed);
        }
      },
      /*morsel_rows=*/1);
  EXPECT_EQ(total.load(), 32u * (64u * 63u / 2));
  EXPECT_GT(pool.stats().inline_jobs, 0u);
}

TEST(MorselPoolStressTest, InteractiveJobNotStarvedByBatchJob) {
  // One worker, one saturating batch job: without the priority lanes an
  // interactive job's morsels would queue behind ~hundreds of batch
  // morsels. With them, the worker drains interactive morsels first and
  // the small job finishes while the batch job is still running.
  MorselPool pool(1);
  std::atomic<bool> batch_started{false};
  std::atomic<bool> batch_done{false};
  std::atomic<std::uint64_t> batch_after_interactive{0};
  std::atomic<bool> interactive_done{false};

  std::thread batch([&] {
    ScopedPriority priority(Priority::kBatch);
    pool.ParallelFor(
        /*n=*/400,
        [&](IndexRange, std::size_t) {
          batch_started.store(true, std::memory_order_release);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          if (interactive_done.load(std::memory_order_acquire)) {
            batch_after_interactive.fetch_add(1, std::memory_order_relaxed);
          }
        },
        /*morsel_rows=*/1);
    batch_done.store(true, std::memory_order_release);
  });

  while (!batch_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  bool batch_still_running = false;
  {
    ScopedPriority priority(Priority::kInteractive);
    pool.ParallelFor(
        /*n=*/4, [](IndexRange, std::size_t) {}, /*morsel_rows=*/1);
    batch_still_running = !batch_done.load(std::memory_order_acquire);
    interactive_done.store(true, std::memory_order_release);
  }
  batch.join();

  // The interactive job must have overtaken the batch job, and the
  // batch job must have kept running after it finished (i.e. the small
  // query did not simply wait for the big one to drain).
  EXPECT_TRUE(batch_still_running);
  EXPECT_GT(batch_after_interactive.load(std::memory_order_relaxed), 0u);
}

TEST(MorselPoolStressTest, SumIsDeterministicAcrossRuns) {
  MorselPool pool(3);
  const auto run = [&pool] {
    return pool.Sum<std::uint64_t>(100000,
                                   [](std::size_t i) { return i * 2654435761u; });
  };
  const std::uint64_t first = run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(run(), first);
  }
}

}  // namespace
}  // namespace gdelt::parallel
