#include "util/args.hpp"

#include <gtest/gtest.h>

namespace gdelt {
namespace {

ArgParser MakeParser() {
  ArgParser p("test tool");
  p.AddString("name", "default", "a name");
  p.AddInt("count", 3, "a count");
  p.AddDouble("rate", 0.5, "a rate");
  p.AddBool("verbose", false, "chatty");
  return p;
}

Status ParseArgs(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, Defaults) {
  ArgParser p = MakeParser();
  ASSERT_TRUE(ParseArgs(p, {}).ok());
  EXPECT_EQ(p.GetString("name"), "default");
  EXPECT_EQ(p.GetInt("count"), 3);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), 0.5);
  EXPECT_FALSE(p.GetBool("verbose"));
}

TEST(ArgsTest, KeyValueForms) {
  ArgParser p = MakeParser();
  ASSERT_TRUE(
      ParseArgs(p, {"--name=alpha", "--count", "7", "--rate=2.5"}).ok());
  EXPECT_EQ(p.GetString("name"), "alpha");
  EXPECT_EQ(p.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), 2.5);
}

TEST(ArgsTest, BoolFlagAndExplicit) {
  ArgParser p = MakeParser();
  ASSERT_TRUE(ParseArgs(p, {"--verbose"}).ok());
  EXPECT_TRUE(p.GetBool("verbose"));

  ArgParser q = MakeParser();
  ASSERT_TRUE(ParseArgs(q, {"--verbose=false"}).ok());
  EXPECT_FALSE(q.GetBool("verbose"));
}

TEST(ArgsTest, Positionals) {
  ArgParser p = MakeParser();
  ASSERT_TRUE(ParseArgs(p, {"input.txt", "--count", "2", "out.txt"}).ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "out.txt");
}

TEST(ArgsTest, UnknownOptionFails) {
  ArgParser p = MakeParser();
  EXPECT_EQ(ParseArgs(p, {"--bogus", "1"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ArgsTest, BadTypeFails) {
  ArgParser p = MakeParser();
  EXPECT_FALSE(ParseArgs(p, {"--count", "seven"}).ok());
  ArgParser q = MakeParser();
  EXPECT_FALSE(ParseArgs(q, {"--verbose=banana"}).ok());
}

TEST(ArgsTest, MissingValueFails) {
  ArgParser p = MakeParser();
  EXPECT_FALSE(ParseArgs(p, {"--count"}).ok());
}

TEST(ArgsTest, FlagWithoutValueDoesNotSwallowNextFlag) {
  // Regression: `gdelt_query --db --query stats` used to silently take
  // "--query" as the value of --db and "stats" as a positional.
  ArgParser p = MakeParser();
  const Status s = ParseArgs(p, {"--name", "--count", "7"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--name"), std::string::npos);

  // An explicit `=` still allows values that start with dashes.
  ArgParser q = MakeParser();
  ASSERT_TRUE(ParseArgs(q, {"--name=--weird"}).ok());
  EXPECT_EQ(q.GetString("name"), "--weird");

  // Single-dash values (negative numbers) still work positionally.
  ArgParser r = MakeParser();
  ASSERT_TRUE(ParseArgs(r, {"--count", "-7"}).ok());
  EXPECT_EQ(r.GetInt("count"), -7);
}

TEST(ArgsTest, HelpTextMentionsOptions) {
  ArgParser p = MakeParser();
  const std::string help = p.HelpText();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("a rate"), std::string::npos);
}

}  // namespace
}  // namespace gdelt
