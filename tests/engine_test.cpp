#include "engine/database.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace gdelt::engine {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

/// Fixture converting a Tiny generated dataset once for all query tests.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("engine");
    cfg_ = gen::GeneratorConfig::Tiny();
    cfg_.defect_missing_archives = 0;  // keep totals exactly equal to truth
    dataset_ = new gen::RawDataset(gen::GenerateDataset(cfg_));
    ASSERT_TRUE(
        gen::EmitDataset(*dataset_, cfg_, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dataset_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline gen::GeneratorConfig cfg_;
  static inline gen::RawDataset* dataset_ = nullptr;
  static inline Database* db_ = nullptr;
};

TEST_F(EngineTest, LoadMatchesGroundTruth) {
  EXPECT_EQ(db_->num_events(), dataset_->truth.num_events);
  EXPECT_EQ(db_->num_mentions(), dataset_->truth.num_mentions);
  EXPECT_GT(db_->num_sources(), 0u);
  EXPECT_GT(db_->MemoryBytes(), 0u);
}

TEST_F(EngineTest, ArticlesPerSourceMatchesTruth) {
  const auto counts = ArticlesPerSource(*db_);
  // Match by domain name: dictionary ids differ from world indexes.
  std::map<std::string, std::uint64_t> truth;
  for (std::size_t i = 0; i < dataset_->world.sources.size(); ++i) {
    if (dataset_->truth.articles_per_source[i] > 0) {
      truth[dataset_->world.sources[i].domain] =
          dataset_->truth.articles_per_source[i];
    }
  }
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < db_->num_sources(); ++s) {
    const auto it = truth.find(std::string(db_->source_domain(s)));
    ASSERT_NE(it, truth.end()) << db_->source_domain(s);
    EXPECT_EQ(counts[s], it->second) << db_->source_domain(s);
    total += counts[s];
  }
  EXPECT_EQ(total, db_->num_mentions());
}

TEST_F(EngineTest, ArticlesPerSourceSchedulesAgree) {
  const auto a = ArticlesPerSource(*db_, Schedule::kStatic);
  const auto b = ArticlesPerSource(*db_, Schedule::kDynamic);
  const auto c = ArticlesPerSource(*db_, Schedule::kGuided);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(EngineTest, EventArticleCountsMatchIndex) {
  const auto counts = db_->event_article_count();
  for (std::size_t e = 0; e < db_->num_events(); ++e) {
    EXPECT_EQ(counts[e],
              db_->mentions_by_event().CountOf(static_cast<std::uint32_t>(e)));
  }
}

TEST_F(EngineTest, TopEventsAreSortedAndMega) {
  const auto top = TopReportedEvents(*db_, 10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].articles, top[i].articles);
  }
  // The two planted mega events must occupy the first two rows.
  std::set<std::uint64_t> mega_ids;
  for (const auto& ev : dataset_->events) {
    if (ev.is_mega) mega_ids.insert(ev.global_event_id);
  }
  const auto gids = db_->event_global_id();
  EXPECT_TRUE(mega_ids.count(gids[top[0].event_row]));
  EXPECT_TRUE(mega_ids.count(gids[top[1].event_row]));
}

TEST_F(EngineTest, TopSourcesSortedDescending) {
  const auto counts = ArticlesPerSource(*db_);
  const auto top = TopSourcesByArticles(*db_, 10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(counts[top[i - 1]], counts[top[i]]);
  }
  // No other source may beat the 10th.
  for (std::uint32_t s = 0; s < db_->num_sources(); ++s) {
    if (std::find(top.begin(), top.end(), s) == top.end()) {
      EXPECT_LE(counts[s], counts[top.back()]);
    }
  }
}

TEST_F(EngineTest, QuarterlySeriesSumToTotals) {
  const auto articles = ArticlesPerQuarter(*db_);
  std::uint64_t article_sum = 0;
  for (const auto v : articles.values) article_sum += v;
  EXPECT_EQ(article_sum, db_->num_mentions());

  const auto events = EventsPerQuarter(*db_);
  std::uint64_t event_sum = 0;
  for (const auto v : events.values) event_sum += v;
  EXPECT_EQ(event_sum, db_->num_events());
}

TEST_F(EngineTest, ActiveSourcesNeverExceedsTotal) {
  const auto active = ActiveSourcesPerQuarter(*db_);
  for (const auto v : active.values) {
    EXPECT_LE(v, db_->num_sources());
    EXPECT_GT(v, 0u);
  }
}

TEST_F(EngineTest, SourceQuarterSeriesMatchesTotals) {
  const auto top = TopSourcesByArticles(*db_, 5);
  const auto counts = ArticlesPerSource(*db_);
  const auto series = SourceArticlesPerQuarter(*db_, top);
  ASSERT_EQ(series.size(), top.size());
  for (std::size_t s = 0; s < top.size(); ++s) {
    std::uint64_t sum = 0;
    for (const auto v : series[s].values) sum += v;
    EXPECT_EQ(sum, counts[top[s]]);
  }
}

TEST_F(EngineTest, CrossReportingColumnTotals) {
  const auto report = CountryCrossReporting(*db_);
  // Column totals must equal per-country published articles.
  const auto src = db_->mention_source_id();
  const auto source_country = db_->source_country();
  std::vector<std::uint64_t> expected(Countries().size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::uint16_t c = source_country[src[i]];
    if (c != kNoCountry) ++expected[c];
  }
  ASSERT_EQ(report.articles_per_publisher.size(), expected.size());
  for (std::size_t c = 0; c < expected.size(); ++c) {
    EXPECT_EQ(report.articles_per_publisher[c], expected[c]) << c;
  }
  // Percentages over reported countries stay within [0, 100].
  for (std::size_t r = 0; r < report.num_countries; ++r) {
    for (std::size_t p = 0; p < report.num_countries; ++p) {
      const double pct = report.Percent(static_cast<CountryId>(r),
                                        static_cast<CountryId>(p));
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0);
    }
  }
}

TEST_F(EngineTest, UsaDominatesReportedEvents) {
  const auto ranked = CountriesByReportedEvents(*db_, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], country::kUSA) << "USA hosts most events (Table VI)";
}

TEST_F(EngineTest, MissingDatabaseDirectoryFails) {
  EXPECT_FALSE(Database::Load("/no/such/dir").ok());
}

TEST_F(EngineTest, DistinctSourceIndexMatchesBruteForce) {
  const auto& index = db_->event_distinct_sources();
  ASSERT_EQ(index.num_keys(), db_->num_events());
  const auto src = db_->mention_source_id();
  for (std::size_t e = 0; e < db_->num_events(); ++e) {
    std::set<std::uint32_t> expected;
    for (const std::uint64_t row :
         db_->mentions_by_event().RowsOf(static_cast<std::uint32_t>(e))) {
      expected.insert(src[row]);
    }
    const auto got = index.ValuesOf(static_cast<std::uint32_t>(e));
    ASSERT_EQ(got.size(), expected.size()) << "event " << e;
    // Sorted, deduplicated, and exactly the reporting sources (std::set
    // iterates ascending, so element-wise equality checks all three).
    std::size_t i = 0;
    for (const std::uint32_t s : expected) {
      ASSERT_EQ(got[i++], s) << "event " << e;
    }
  }
}

TEST_F(EngineTest, DistinctSourceIndexIsMemoized) {
  const auto& first = db_->event_distinct_sources();
  const auto& second = db_->event_distinct_sources();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.values.data(), second.values.data());
}

TEST(DistinctSourceIndexTest, EmptyEventsAndDedup) {
  TempDir dir("distinct_idx");
  TestDbBuilder builder;
  const auto e1 = builder.AddEvent(100);
  const auto e2 = builder.AddEvent(200);  // never mentioned
  const auto e3 = builder.AddEvent(300);
  builder.AddMention(e1, 101, "b.com");
  builder.AddMention(e1, 102, "a.com");
  builder.AddMention(e1, 103, "b.com");  // duplicate source
  builder.AddMention(e3, 301, "c.com");
  (void)e2;
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto& index = db->event_distinct_sources();
  ASSERT_EQ(index.num_keys(), 3u);
  const auto a = *db->sources().Find("a.com");
  const auto b = *db->sources().Find("b.com");
  const auto c = *db->sources().Find("c.com");
  // Event 0: {a, b} sorted ascending despite b arriving first, dup dropped.
  ASSERT_EQ(index.CountOf(0), 2u);
  EXPECT_EQ(index.ValuesOf(0)[0], std::min(a, b));
  EXPECT_EQ(index.ValuesOf(0)[1], std::max(a, b));
  // Event 1: no mentions -> empty list.
  EXPECT_EQ(index.CountOf(1), 0u);
  EXPECT_TRUE(index.ValuesOf(1).empty());
  // Event 2: singleton.
  ASSERT_EQ(index.CountOf(2), 1u);
  EXPECT_EQ(index.ValuesOf(2)[0], c);
}

TEST(DistinctSourceIndexTest, EmptyDatabase) {
  TempDir dir("distinct_empty");
  TestDbBuilder builder;
  builder.AddEvent(100);  // one event, zero mentions
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto& index = db->event_distinct_sources();
  ASSERT_EQ(index.num_keys(), 1u);
  EXPECT_EQ(index.CountOf(0), 0u);
  EXPECT_TRUE(index.values.empty());
}

TEST(DatabaseIntegrityTest, RejectsOutOfRangeEventRow) {
  TempDir dir("integrity");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(1000);
  builder.AddMention(e, 1001, "a.com");
  builder.AddMention(e + 999, 1002, "b.com");  // orphan: unknown event id
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();  // orphans are legal
  EXPECT_EQ(db->num_mentions(), 2u);
  EXPECT_EQ(db->mentions_by_event().CountOf(0), 1u);
}

TEST(DatabaseSmallTest, HandBuiltCountsAndSpans) {
  TempDir dir("small");
  TestDbBuilder builder;
  const auto e1 = builder.AddEvent(100, country::kUSA);
  const auto e2 = builder.AddEvent(200, country::kUK);
  builder.AddMention(e1, 101, "x.com");
  builder.AddMention(e1, 102, "y.co.uk");
  builder.AddMention(e1, 103, "x.com");
  builder.AddMention(e2, 201, "y.co.uk");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_events(), 2u);
  EXPECT_EQ(db->num_mentions(), 4u);
  EXPECT_EQ(db->num_sources(), 2u);
  EXPECT_EQ(db->event_article_count()[0], 3u);
  EXPECT_EQ(db->event_article_count()[1], 1u);
  EXPECT_EQ(db->first_interval(), 101);
  EXPECT_EQ(db->last_interval(), 201);
  // Source countries derived from TLDs.
  const auto x = *db->sources().Find("x.com");
  const auto y = *db->sources().Find("y.co.uk");
  EXPECT_EQ(db->source_country()[x], country::kUSA);
  EXPECT_EQ(db->source_country()[y], country::kUK);
}

}  // namespace
}  // namespace gdelt::engine
