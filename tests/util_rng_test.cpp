#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gdelt {
namespace {

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(XoshiroTest, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b = a.Split();
  // The split stream must differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(UniformDoubleTest, InUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = UniformDouble(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformBelowTest, RespectsBound) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = UniformBelow(rng, 10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  EXPECT_EQ(UniformBelow(rng, 0), 0u);
  EXPECT_EQ(UniformBelow(rng, 1), 0u);
}

TEST(UniformIntTest, InclusiveRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = UniformInt(rng, -3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(NormalTest, MomentsApproximatelyStandard) {
  Xoshiro256 rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = NormalDouble(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(LogNormalTest, MedianIsExpMu) {
  Xoshiro256 rng(19);
  const double mu = 2.83;
  std::vector<double> xs(50001);
  for (auto& x : xs) x = LogNormalDouble(rng, mu, 0.75);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(mu), std::exp(mu) * 0.05);
}

TEST(PoissonTest, MeanMatches) {
  Xoshiro256 rng(23);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(PoissonCount(rng, mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(PoissonCount(rng, 0.0), 0u);
  EXPECT_EQ(PoissonCount(rng, -1.0), 0u);
}

TEST(BernoulliTest, Extremes) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Bernoulli(rng, 0.0));
    EXPECT_TRUE(Bernoulli(rng, 1.0));
  }
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, RanksFollowPowerLaw) {
  const double alpha = GetParam();
  Xoshiro256 rng(31);
  ZipfDistribution zipf(100, alpha);
  std::vector<std::uint64_t> counts(101, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = zipf(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    ++counts[v];
  }
  // Rank 1 must dominate, and the empirical ratio P(1)/P(2) ~ 2^alpha.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[8]);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
  EXPECT_NEAR(ratio, std::pow(2.0, alpha), std::pow(2.0, alpha) * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfTest, ::testing::Values(0.8, 1.05, 2.0));

TEST(ShuffleTest, PermutesAllElements) {
  Xoshiro256 rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  Shuffle(v, rng);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(SampleCumulativeTest, RespectsWeights) {
  Xoshiro256 rng(41);
  const std::vector<double> cum{1.0, 1.0, 11.0};  // weights 1, 0, 10
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[SampleCumulative(cum, rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(SampleCumulativeTest, EmptyReturnsZero) {
  Xoshiro256 rng(43);
  EXPECT_EQ(SampleCumulative({}, rng), 0u);
}

}  // namespace
}  // namespace gdelt
