// Torn-read contract stress test for the DeltaStore snapshot path.
//
// One ingester publishes ticks in a strict alternating pattern (event
// tick, then mention tick) while reader threads hammer the multi-accessor
// "stats render" sequence: acquire one snapshot, then read every count
// and combined aggregate from it. The pattern makes every quantity a
// closed-form function of the generation, so if ANY pair of accessor
// results ever mixed two generations — the pre-RCU failure mode, where a
// tick landing between two calls produced e.g. post-ingest mentions
// paired with pre-ingest sources — an equation below breaks.
//
// Runs under TSan in CI (alongside morsel_pool_cancel_stress_test) to
// also prove the acquire/release publication protocol is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "schema/countries.hpp"
#include "schema/gdelt_schema.hpp"
#include "stream/delta_store.hpp"

namespace gdelt::stream {
namespace {

std::string JoinRow(const std::vector<std::string>& fields) {
  std::string row;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    row += fields[i];
    row += i + 1 < fields.size() ? '\t' : '\n';
  }
  return row;
}

/// One USA-located event with global id `gid`.
std::string EventRow(std::uint64_t gid) {
  std::vector<std::string> f(kEventFieldCount);
  f[Index(EventField::kGlobalEventId)] = std::to_string(gid);
  f[Index(EventField::kDateAdded)] = "20240101000000";
  f[Index(EventField::kActionGeoCountryCode)] = "US";
  return JoinRow(f);
}

/// One mention of event `gid` published by `domain`.
std::string MentionRow(std::uint64_t gid, const std::string& domain) {
  std::vector<std::string> f(kMentionFieldCount);
  f[Index(MentionField::kGlobalEventId)] = std::to_string(gid);
  f[Index(MentionField::kMentionTimeDate)] = "20240101001500";
  f[Index(MentionField::kMentionSourceName)] = domain;
  return JoinRow(f);
}

// Tick pattern: odd generations ingest 1 USA event; even generations
// ingest kMentionsPerTick mentions of the previous tick's event, all
// from one never-seen-before domain. At generation g, therefore:
//   delta_events    == (g + 1) / 2
//   delta_mentions  == kMentionsPerTick * (g / 2)
//   num_sources     == g / 2
//   articles about USA == delta_mentions  (every event is in the US)
//   sum(articles per source) == delta_mentions
constexpr int kTicks = 200;
constexpr std::uint64_t kMentionsPerTick = 3;

void CheckSnapshotConsistent(const DeltaSnapshot& snap) {
  const std::uint64_t g = snap.generation();
  ASSERT_LE(g, static_cast<std::uint64_t>(kTicks));
  EXPECT_EQ(snap.delta_events(), (g + 1) / 2) << "generation " << g;
  EXPECT_EQ(snap.delta_mentions(), kMentionsPerTick * (g / 2))
      << "generation " << g;
  EXPECT_EQ(snap.num_sources(), g / 2) << "generation " << g;
  EXPECT_EQ(snap.CombinedMentionCount(), snap.delta_mentions());
  EXPECT_EQ(snap.malformed_rows(), 0u);

  const auto per_source = snap.CombinedArticlesPerSource();
  ASSERT_EQ(per_source.size(), snap.num_sources());
  const std::uint64_t total = std::accumulate(
      per_source.begin(), per_source.end(), std::uint64_t{0});
  EXPECT_EQ(total, snap.delta_mentions()) << "generation " << g;
  // Every mention tick contributes exactly kMentionsPerTick articles
  // from its own fresh domain.
  for (std::size_t s = 0; s < per_source.size(); ++s) {
    EXPECT_EQ(per_source[s], kMentionsPerTick) << "source " << s;
    EXPECT_EQ(snap.source_domain(static_cast<std::uint32_t>(s)),
              "d" + std::to_string(s) + ".com");
  }
  EXPECT_EQ(snap.CombinedArticlesAboutCountry(country::kUSA),
            snap.delta_mentions())
      << "generation " << g;

  const auto top = snap.CombinedTopSources(3);
  EXPECT_EQ(top.size(), std::min<std::size_t>(3, per_source.size()));
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(per_source[top[i - 1]], per_source[top[i]]);
  }

  // The snapshot is frozen: after all of the scans above, the generation
  // it reports is still the one we started from.
  EXPECT_EQ(snap.generation(), g);
}

TEST(DeltaSnapshotStressTest, MultiAccessorRendersAreSingleGeneration) {
  DeltaStore delta(nullptr);
  std::atomic<bool> done{false};

  // Readers first: each performs a minimum number of renders even if the
  // ingester outruns them (ticks are fast on an unloaded box), so the
  // mid-stream generations are actually exercised, not just the final
  // one.
  constexpr int kReaders = 4;
  constexpr std::uint64_t kMinRendersPerReader = 100;
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> renders{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!done.load(std::memory_order_acquire) ||
             local < kMinRendersPerReader) {
        const auto snap = delta.Acquire();
        CheckSnapshotConsistent(*snap);
        ++local;
      }
      renders.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::thread ingester([&] {
    for (int tick = 1; tick <= kTicks; ++tick) {
      if (tick % 2 == 1) {
        // gid encodes the tick so every event is unique.
        ASSERT_TRUE(delta.IngestEventsCsv(EventRow(10'000 + tick)).ok());
      } else {
        const std::uint64_t event_gid = 10'000 + tick - 1;
        const std::string domain =
            "d" + std::to_string(tick / 2 - 1) + ".com";
        std::string csv;
        for (std::uint64_t m = 0; m < kMentionsPerTick; ++m) {
          csv += MentionRow(event_gid, domain);
        }
        ASSERT_TRUE(delta.IngestMentionsCsv(csv).ok());
      }
    }
    done.store(true, std::memory_order_release);
  });

  ingester.join();
  for (auto& t : readers) t.join();
  EXPECT_GE(renders.load(), kReaders * kMinRendersPerReader);

  // Final state, read through the store's own forwarding accessors.
  const auto final_snap = delta.Acquire();
  EXPECT_EQ(final_snap->generation(), static_cast<std::uint64_t>(kTicks));
  CheckSnapshotConsistent(*final_snap);
}

TEST(DeltaSnapshotStressTest, HeldSnapshotIsImmuneToLaterTicks) {
  DeltaStore delta(nullptr);
  ASSERT_TRUE(delta.IngestEventsCsv(EventRow(1)).ok());
  ASSERT_TRUE(
      delta.IngestMentionsCsv(MentionRow(1, "d0.com") + MentionRow(1, "d0.com") +
                              MentionRow(1, "d0.com"))
          .ok());

  const auto held = delta.Acquire();
  const std::string_view held_domain = held->source_domain(0);
  ASSERT_EQ(held->generation(), 2u);

  // Pile on ticks; the held snapshot must not move, and the view it
  // handed out must stay valid (the chunk is pinned by the shared_ptr).
  for (int tick = 3; tick <= 40; ++tick) {
    if (tick % 2 == 1) {
      ASSERT_TRUE(delta.IngestEventsCsv(EventRow(tick)).ok());
    } else {
      ASSERT_TRUE(
          delta.IngestMentionsCsv(
                   MentionRow(tick - 1, "x" + std::to_string(tick) + ".org"))
              .ok());
    }
  }
  EXPECT_EQ(delta.Generation(), 40u);
  EXPECT_EQ(held->generation(), 2u);
  EXPECT_EQ(held->delta_mentions(), 3u);
  EXPECT_EQ(held->num_sources(), 1u);
  EXPECT_EQ(held_domain, "d0.com");
  EXPECT_EQ(held->CombinedArticlesAboutCountry(country::kUSA), 3u);
}

}  // namespace
}  // namespace gdelt::stream
