// Seeded fault-injection sweep over the whole ingest tier: hundreds of
// randomized open/read/truncate/write fault schedules against the batch
// converter and the streaming delta store. The property under test is
// blanket robustness — every outcome is either success or a structured
// Status; never a crash, a hang, or a half-applied delta. CI varies the
// schedules via GDELT_FAULT_SWEEP_SEED_BASE.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "convert/converter.hpp"
#include "convert/master_list.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/fault.hpp"
#include "io/file.hpp"
#include "stream/delta_store.hpp"
#include "test_util.hpp"
#include "util/strings.hpp"

namespace gdelt {
namespace {

using ::gdelt::testing::TempDir;

std::uint64_t SweepSeedBase() {
  if (const char* env = std::getenv("GDELT_FAULT_SWEEP_SEED_BASE")) {
    if (const auto parsed = ParseUint64(env)) return *parsed;
  }
  return 1000;
}

/// Fault schedules exercised per trial (kill excluded: it would _Exit the
/// test runner; the crash path is covered by convert_crash_smoke.sh).
const char* const kSpecs[] = {
    "open~60", "read~40", "trunc~60", "write~25",
    "open~20,read~20,trunc~20,write~20",
};
constexpr int kNumSpecs = static_cast<int>(std::size(kSpecs));

class FaultSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("faultsweep");
    auto cfg = gen::GeneratorConfig::Tiny();
    cfg.defect_missing_archives = 0;
    cfg.defect_malformed_master_entries = 0;
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());

    auto master = ReadWholeFile(dirs_->path() + "/raw/masterfilelist.txt");
    ASSERT_TRUE(master.ok());
    for (const auto& e : convert::ParseMasterList(*master).entries) {
      if (e.kind == convert::ArchiveKind::kExport) {
        exports_.push_back(dirs_->path() + "/raw/" + e.file_name);
      } else if (e.kind == convert::ArchiveKind::kMentions) {
        mentions_.push_back(dirs_->path() + "/raw/" + e.file_name);
      }
    }
    ASSERT_EQ(exports_.size(), mentions_.size());
    ASSERT_GE(exports_.size(), 6u);
  }
  static void TearDownTestSuite() {
    delete dirs_;
    dirs_ = nullptr;
    exports_.clear();
    mentions_.clear();
  }

  static inline TempDir* dirs_ = nullptr;
  static inline std::vector<std::string> exports_;
  static inline std::vector<std::string> mentions_;
};

TEST_F(FaultSweepTest, ConverterSurvivesRandomFaultSchedules) {
  const std::uint64_t seed_base = SweepSeedBase();
  const std::string out = dirs_->path() + "/out";
  convert::ConvertOptions options;
  options.input_dir = dirs_->path() + "/raw";
  options.output_dir = out;
  options.fetch.max_attempts = 2;
  options.fetch.backoff_initial_ms = 0;  // retry immediately: no sleeps

  constexpr int kTrials = 100;
  std::uint64_t faults_fired = 0;
  int succeeded = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ASSERT_TRUE(RemoveAll(out).ok());
    const std::string spec = std::string(kSpecs[trial % kNumSpecs]) + ":" +
                             std::to_string(seed_base + trial);
    Result<convert::ConvertReport> report = status::Internal("unset");
    {
      fault::ScopedFaultInjection guard(spec);
      report = convert::ConvertDataset(options);
      faults_fired += fault::Global().injected();
    }
    if (!report.ok()) continue;  // a structured Status is a pass
    ++succeeded;
    // Whatever the faults corrupted was either retried into shape or
    // counted out; a run that reports success must leave a loadable,
    // integrity-clean database behind.
    EXPECT_TRUE(engine::Database::Load(out).ok())
        << "spec " << spec << " produced an unloadable database";
  }
  // The schedules are aggressive enough to matter and mild enough that
  // both outcomes appear; a sweep where nothing fired tests nothing.
  EXPECT_GT(faults_fired, 0u);
  EXPECT_GT(succeeded, 0);
  EXPECT_LT(succeeded, kTrials);
}

TEST_F(FaultSweepTest, DeltaIngestIsAllOrNothingUnderFaults) {
  const std::uint64_t seed_base = SweepSeedBase() + 500;
  convert::FetchPolicy policy;
  // Single attempt: retries would heal most transient schedules (that
  // path is fetcher_test's job); here every fault must hit the
  // all-or-nothing boundary.
  policy.max_attempts = 1;
  policy.backoff_initial_ms = 0;

  constexpr int kTrials = 120;
  constexpr std::size_t kPairsPerTrial = 6;
  std::uint64_t faults_fired = 0;
  std::uint64_t failed_ingests = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    stream::DeltaStore delta(nullptr);
    delta.set_fetch_policy(policy);
    const std::string spec = std::string(kSpecs[trial % kNumSpecs]) + ":" +
                             std::to_string(seed_base + trial);
    fault::ScopedFaultInjection guard(spec);
    for (std::size_t i = 0; i < kPairsPerTrial; ++i) {
      const std::uint64_t gen_before = delta.Generation();
      const std::uint64_t events_before = delta.delta_events();
      const std::uint64_t mentions_before = delta.delta_mentions();
      const Status status = delta.IngestArchivePair(exports_[i], mentions_[i]);
      if (status.ok()) {
        EXPECT_EQ(delta.Generation(), gen_before + 1);
      } else {
        ++failed_ingests;
        // All-or-nothing: a failed pair leaves no trace in the store.
        EXPECT_EQ(delta.Generation(), gen_before) << spec;
        EXPECT_EQ(delta.delta_events(), events_before) << spec;
        EXPECT_EQ(delta.delta_mentions(), mentions_before) << spec;
      }
    }
    faults_fired += fault::Global().injected();
  }
  EXPECT_GT(faults_fired, 0u);
  EXPECT_GT(failed_ingests, 0u);
}

}  // namespace
}  // namespace gdelt
