#!/bin/sh
# End-to-end smoke test of the three CLI tools:
# generate -> convert -> a battery of queries, checking exit codes and
# that key markers appear in the output.
set -e
BIN_DIR="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BIN_DIR/gdelt_generate" --preset tiny --seed 5 --out "$WORK/raw" > "$WORK/gen.log" 2>&1
grep -q "wrote" "$WORK/gen.log"

"$BIN_DIR/gdelt_convert" --in "$WORK/raw" --out "$WORK/db" > "$WORK/conv.log" 2>&1
grep -q "missing archives" "$WORK/conv.log"
test -f "$WORK/db/events.tbl"
test -f "$WORK/db/mentions.tbl"
test -f "$WORK/db/sources.dict"
test -f "$WORK/db/convert_report.txt"

for q in stats top-sources top-events quarterly coreport follow \
         country-coreport cross-report delay tone scaling; do
  "$BIN_DIR/gdelt_query" --db "$WORK/db" --query "$q" --top 5 \
      > "$WORK/q_$q.log" 2>&1
done
grep -q "General dataset statistics" "$WORK/q_stats.log"
grep -q "Follow-reporting" "$WORK/q_follow.log"
grep -q "quad class" "$WORK/q_tone.log"

# Filter-aware queries with a time window and confidence restriction.
"$BIN_DIR/gdelt_query" --db "$WORK/db" --query top-sources \
    --from 20150225000000 --to 20150305000000 --min-confidence 50 \
    > "$WORK/q_filtered.log" 2>&1
grep -q "restricted" "$WORK/q_filtered.log"
"$BIN_DIR/gdelt_query" --db "$WORK/db" --query coreport --top 5 \
    --min-confidence 50 > "$WORK/q_coreport_filtered.log" 2>&1
grep -q "sources (restricted):" "$WORK/q_coreport_filtered.log"
grep -q "filter selects" "$WORK/q_coreport_filtered.log"
if "$BIN_DIR/gdelt_query" --db "$WORK/db" --query top-sources \
    --from bad-stamp >/dev/null 2>&1; then
  echo "expected failure for bad --from" >&2
  exit 1
fi

# Unknown query must fail loudly.
if "$BIN_DIR/gdelt_query" --db "$WORK/db" --query bogus >/dev/null 2>&1; then
  echo "expected failure for unknown query" >&2
  exit 1
fi
# Unknown flag must fail loudly.
if "$BIN_DIR/gdelt_generate" --bogus-flag >/dev/null 2>&1; then
  echo "expected failure for unknown flag" >&2
  exit 1
fi
echo "cli smoke OK"
