// Negative-compile probe: reading a GDELT_GUARDED_BY field without its
// mutex. Under Clang with -Werror=thread-safety this file MUST fail to
// compile — tests/tsa_negative/check.cmake asserts exactly that. If it
// ever starts compiling, the thread-safety wall has a hole (macros
// compiled away, flags dropped, or annotations broken).
#include <cstdint>

#include "util/sync.hpp"

namespace gdelt {

class Counter {
 public:
  void Bump() {
    sync::MutexLock lock(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without holding mu_.
  std::uint64_t Peek() const { return value_; }

 private:
  mutable sync::Mutex mu_;
  std::uint64_t value_ GDELT_GUARDED_BY(mu_) = 0;
};

std::uint64_t Probe() {
  Counter c;
  c.Bump();
  return c.Peek();
}

}  // namespace gdelt
