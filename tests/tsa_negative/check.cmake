# Negative-compile check for the Clang Thread-Safety Analysis wall.
#
# Run by ctest as `tsa_negative_compile` (see tests/CMakeLists.txt):
#   cmake -DCXX=<compiler> -DCOMPILER_ID=<id> -DSRC_DIR=<repo> -P check.cmake
#
# Asserts BOTH directions:
#   1. guarded_access.cpp (correctly locked) compiles cleanly, and
#   2. unguarded_access.cpp (deliberate violation) FAILS to compile,
# under -Wthread-safety -Werror=thread-safety. Direction 1 keeps
# direction 2 meaningful: if the flags or annotations silently stopped
# working, the violation would "pass" too — so we require a clean
# positive control first.
#
# GCC compiles the annotations to nothing, so there the check prints
# SKIPPED (matched by SKIP_REGULAR_EXPRESSION) instead of passing
# vacuously.

if(NOT COMPILER_ID MATCHES "Clang")
  message(STATUS "SKIPPED: requires Clang (have ${COMPILER_ID})")
  return()
endif()

set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I ${SRC_DIR}/src)

execute_process(
  COMMAND ${CXX} ${FLAGS} ${SRC_DIR}/tests/tsa_negative/guarded_access.cpp
  RESULT_VARIABLE GOOD_RESULT
  ERROR_VARIABLE GOOD_STDERR)
if(NOT GOOD_RESULT EQUAL 0)
  message(FATAL_ERROR
          "positive control guarded_access.cpp failed to compile — the "
          "thread-safety annotations themselves are broken:\n${GOOD_STDERR}")
endif()

execute_process(
  COMMAND ${CXX} ${FLAGS} ${SRC_DIR}/tests/tsa_negative/unguarded_access.cpp
  RESULT_VARIABLE BAD_RESULT
  ERROR_VARIABLE BAD_STDERR)
if(BAD_RESULT EQUAL 0)
  message(FATAL_ERROR
          "unguarded_access.cpp compiled cleanly — the thread-safety wall "
          "is not enforcing GDELT_GUARDED_BY")
endif()
if(NOT BAD_STDERR MATCHES "thread-safety|guarded_by|guarded by")
  message(FATAL_ERROR
          "unguarded_access.cpp failed for the wrong reason:\n${BAD_STDERR}")
endif()

message(STATUS "thread-safety wall verified: control clean, violation rejected")
