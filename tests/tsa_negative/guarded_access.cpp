// Positive control for the negative-compile probe: the same shape as
// unguarded_access.cpp but correctly locked everywhere, including a
// Locked-suffix helper with GDELT_REQUIRES and a condition-variable
// wait. Must compile cleanly under -Werror=thread-safety — if it does
// not, the failure of unguarded_access.cpp would prove nothing.
#include <cstdint>

#include "util/sync.hpp"

namespace gdelt {

class Counter {
 public:
  void Bump() {
    sync::MutexLock lock(mu_);
    ++value_;
    cv_.NotifyAll();
  }

  std::uint64_t Peek() const {
    sync::MutexLock lock(mu_);
    return PeekLocked();
  }

  void AwaitNonZero() const {
    sync::MutexLock lock(mu_);
    while (PeekLocked() == 0) cv_.Wait(mu_);
  }

 private:
  std::uint64_t PeekLocked() const GDELT_REQUIRES(mu_) { return value_; }

  mutable sync::Mutex mu_;
  mutable sync::CondVar cv_;
  std::uint64_t value_ GDELT_GUARDED_BY(mu_) = 0;
};

std::uint64_t Probe() {
  Counter c;
  c.Bump();
  c.AwaitNonZero();
  return c.Peek();
}

}  // namespace gdelt
