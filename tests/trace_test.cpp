// Unit tests for the span tracer: enable gating, nesting depth and
// finish-order recording, per-request collectors, ring bounds, aggregates
// and the Chrome trace_event dump.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "io/file.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace gdelt::trace {
namespace {

using ::gdelt::testing::TempDir;

/// Every test starts and ends with a clean, disabled tracer so tests
/// cannot leak spans into each other.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    SetRingCapacity(1 << 16);  // restore the default (also resets)
  }
};

TEST_F(TraceTest, DisarmedSpansRecordNothing) {
  {
    TRACE_SPAN("unit.should_not_record");
  }
  EXPECT_EQ(RecordedCount(), 0u);
  EXPECT_TRUE(RingSnapshot().empty());
  EXPECT_TRUE(Aggregates().empty());
}

TEST_F(TraceTest, NestedSpansRecordDepthAndFinishOrder) {
  SetEnabled(true);
  {
    TRACE_SPAN("unit.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TRACE_SPAN("unit.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  SetEnabled(false);

  const auto spans = RingSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish first, so the inner span is recorded first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "unit.inner");
  EXPECT_EQ(outer.name, "unit.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.tid, outer.tid);
  // The child's window nests inside the parent's.
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
  EXPECT_GE(outer.dur_us, inner.dur_us);

  const auto aggregates = Aggregates();
  ASSERT_EQ(aggregates.size(), 2u);  // name-sorted: inner, outer
  EXPECT_EQ(aggregates[0].name, "unit.inner");
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].name, "unit.outer");
  EXPECT_GE(aggregates[1].total_us, aggregates[0].total_us);
}

TEST_F(TraceTest, AggregatesAccumulateAcrossSpans) {
  SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    TRACE_SPAN("unit.repeat");
  }
  SetEnabled(false);
  const auto aggregates = Aggregates();
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].count, 5u);
  EXPECT_GE(aggregates[0].total_us, aggregates[0].max_us);
}

TEST_F(TraceTest, CollectorCapturesWithGlobalTracingOff) {
  {
    Collector collector;
    EXPECT_EQ(Collector::Current(), &collector);
    {
      TRACE_SPAN("unit.collected");
    }
    ASSERT_EQ(collector.spans().size(), 1u);
    EXPECT_EQ(collector.spans()[0].name, "unit.collected");
  }
  EXPECT_EQ(Collector::Current(), nullptr);
  // The global ring saw nothing: tracing stayed disabled throughout.
  EXPECT_EQ(RecordedCount(), 0u);
}

TEST_F(TraceTest, NestedCollectorsRestoreTheOuterOne) {
  Collector outer;
  {
    Collector inner;
    EXPECT_EQ(Collector::Current(), &inner);
    TRACE_SPAN("unit.inner_only");
  }
  EXPECT_EQ(Collector::Current(), &outer);
  {
    TRACE_SPAN("unit.outer_only");
  }
  ASSERT_EQ(outer.spans().size(), 1u);
  EXPECT_EQ(outer.spans()[0].name, "unit.outer_only");
}

TEST_F(TraceTest, FinishIsIdempotentAndRestoresDepth) {
  SetEnabled(true);
  Span span("unit.finished_early");
  span.Finish();
  span.Finish();  // second call must be a no-op
  {
    // Depth bookkeeping survived the early finish: a new span is depth 0.
    TRACE_SPAN("unit.after_finish");
  }
  SetEnabled(false);
  const auto spans = RingSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "unit.finished_early");
  EXPECT_EQ(spans[1].name, "unit.after_finish");
  EXPECT_EQ(spans[1].depth, 0);
}

TEST_F(TraceTest, RingIsBoundedAndKeepsTheNewestSpans) {
  SetRingCapacity(4);
  SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    Span span(i % 2 == 0 ? "unit.even" : "unit.odd");
  }
  SetEnabled(false);
  EXPECT_EQ(RecordedCount(), 10u);
  const auto spans = RingSnapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first snapshot of the last four spans: 6,7,8,9.
  EXPECT_EQ(spans[0].name, "unit.even");
  EXPECT_EQ(spans[1].name, "unit.odd");
  EXPECT_EQ(spans[2].name, "unit.even");
  EXPECT_EQ(spans[3].name, "unit.odd");
  // The aggregates are not ring-bounded: all ten spans counted.
  std::uint64_t total = 0;
  for (const auto& agg : Aggregates()) total += agg.count;
  EXPECT_EQ(total, 10u);
}

TEST_F(TraceTest, ThreadsGetDistinctIdsOnOneTimeline) {
  SetEnabled(true);
  {
    TRACE_SPAN("unit.main_thread");
  }
  std::thread worker([] { TRACE_SPAN("unit.worker_thread"); });
  worker.join();
  SetEnabled(false);
  const auto spans = RingSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  // Shared epoch: the worker's span starts after the main thread's.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
}

TEST_F(TraceTest, RecordManualUsesTheGivenEndpoints) {
  SetEnabled(true);
  const auto start = Clock::now();
  const auto end = start + std::chrono::milliseconds(25);
  RecordManual("unit.manual", start, end);
  SetEnabled(false);
  const auto spans = RingSnapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.manual");
  EXPECT_GE(spans[0].dur_us, 24'000u);
  EXPECT_LE(spans[0].dur_us, 26'000u);
}

TEST_F(TraceTest, ChromeTraceDumpIsWellFormed) {
  SetEnabled(true);
  {
    TRACE_SPAN("unit.dumped\"quote");  // name needing JSON escaping
  }
  SetEnabled(false);
  TempDir dir("trace_dump");
  const std::string path = dir.path() + "/trace.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  const auto text = ReadWholeFile(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text->find("unit.dumped\\\"quote"), std::string::npos);
}

}  // namespace
}  // namespace gdelt::trace
