#include "analysis/tone.hpp"

#include <gtest/gtest.h>

#include "convert/converter.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace gdelt::analysis {
namespace {

using ::gdelt::testing::TempDir;

class ToneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("tone");
    auto cfg = gen::GeneratorConfig::Tiny();
    cfg.defect_missing_archives = 0;
    dataset_ = new gen::RawDataset(gen::GenerateDataset(cfg));
    ASSERT_TRUE(
        gen::EmitDataset(*dataset_, cfg, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok());
    db_ = new engine::Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dataset_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline gen::RawDataset* dataset_ = nullptr;
  static inline engine::Database* db_ = nullptr;
};

TEST_F(ToneTest, ConflictClassesAreNegative) {
  const QuadClassTone result = ToneByQuadClass(*db_);
  // Classes 1/2 = cooperation (positive), 3/4 = conflict (negative).
  for (const std::size_t q : {1u, 2u}) {
    EXPECT_GT(result.tone[q].Mean(), 0.0) << "quad " << q;
    EXPECT_GT(result.goldstein[q].Mean(), 0.0) << "quad " << q;
    EXPECT_GT(result.tone[q].count, 0u);
  }
  for (const std::size_t q : {3u, 4u}) {
    EXPECT_LT(result.tone[q].Mean(), 0.0) << "quad " << q;
    EXPECT_LT(result.goldstein[q].Mean(), 0.0) << "quad " << q;
  }
  // Every event is in exactly one class 1..4.
  std::uint64_t total = 0;
  for (std::size_t q = 1; q <= 4; ++q) total += result.tone[q].count;
  EXPECT_EQ(total, db_->num_events());
  EXPECT_EQ(result.tone[0].count, 0u);
}

TEST_F(ToneTest, ByCountryMatchesBruteForce) {
  const auto by_country = AverageToneByCountry(*db_);
  // Brute force for the USA (the event-richest country) from the events
  // table itself (tone values round-trip the wire format at 2 decimals).
  const auto country = db_->event_country();
  const auto tone = db_->events_tone();
  double sum = 0.0;
  std::uint64_t count = 0;
  for (std::size_t e = 0; e < db_->num_events(); ++e) {
    if (country[e] == country::kUSA) {
      sum += tone[e];
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_EQ(by_country[country::kUSA].count, count);
  EXPECT_NEAR(by_country[country::kUSA].Mean(), sum / count, 1e-9);
}

TEST_F(ToneTest, QuarterlyToneCoversAllEvents) {
  const QuarterlyTone q = QuarterlyAverageTone(*db_);
  std::uint64_t total = 0;
  for (const auto& acc : q.values) {
    total += acc.count;
    if (acc.count > 0) {
      EXPECT_GT(acc.Mean(), -10.0);
      EXPECT_LT(acc.Mean(), 10.0);
    }
  }
  EXPECT_EQ(total, db_->num_events());
}

TEST(MeanAccumulatorTest, EmptyIsZero) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
}

}  // namespace
}  // namespace gdelt::analysis
