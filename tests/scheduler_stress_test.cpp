// Stress tests for the admission-control scheduler, aimed at the races a
// service actually hits at shutdown: Submit storming from many threads
// while Drain runs, and multiple threads calling Drain at once (which
// used to double-join the worker threads).
//
// The load-bearing invariant: every submitted task is either executed or
// rejected, exactly once — executed + rejected == submitted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"

namespace gdelt::serve {
namespace {

TEST(SchedulerStressTest, SubmitRacingDrainRunsOrRejectsEveryTask) {
  constexpr int kRounds = 20;
  constexpr int kSubmitters = 8;
  constexpr int kPerThread = 200;
  for (int round = 0; round < kRounds; ++round) {
    Scheduler::Options options;
    options.workers = 4;
    options.queue_capacity = 16;
    options.threads_per_query = 1;
    Scheduler scheduler(options);

    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i) {
          if (!scheduler.Submit([&executed] { executed.fetch_add(1); })) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    go.store(true);
    // Two drains race the submit storm (and each other).
    std::thread drain_a([&] { scheduler.Drain(); });
    std::thread drain_b([&] { scheduler.Drain(); });
    for (auto& s : submitters) s.join();
    drain_a.join();
    drain_b.join();
    scheduler.Drain();  // idempotent after the fact

    const std::uint64_t submitted =
        static_cast<std::uint64_t>(kSubmitters) * kPerThread;
    EXPECT_EQ(executed.load() + rejected.load(), submitted)
        << "round " << round << ": executed=" << executed.load()
        << " rejected=" << rejected.load();
    // Drain stops admission, so anything submitted after it wins is
    // rejected — but nothing may be lost silently.
    EXPECT_FALSE(scheduler.Submit([] {}));
  }
}

TEST(SchedulerStressTest, ConcurrentDrainsDoNotDoubleJoin) {
  Scheduler::Options options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.threads_per_query = 1;
  Scheduler scheduler(options);

  std::atomic<int> ran{0};
  int admitted = 0;
  for (int i = 0; i < 32; ++i) {
    if (scheduler.Submit([&ran] {
          ran.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        })) {
      ++admitted;
    }
  }
  // Four drains at once: the old guard let two of them both reach the
  // join loop and join the same std::thread twice (UB / terminate).
  std::vector<std::thread> drains;
  for (int i = 0; i < 4; ++i) {
    drains.emplace_back([&] { scheduler.Drain(); });
  }
  for (auto& d : drains) d.join();

  // Every admitted task ran before any drain returned.
  EXPECT_EQ(ran.load(), admitted);
  EXPECT_FALSE(scheduler.Submit([] {}));
}

TEST(SchedulerStressTest, DrainWaitsForInFlightTask) {
  Scheduler::Options options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.threads_per_query = 1;
  Scheduler scheduler(options);

  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  ASSERT_TRUE(scheduler.Submit([&] {
    started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    finished.store(true);
  }));
  while (!started.load()) std::this_thread::yield();
  scheduler.Drain();
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace gdelt::serve
