// ChunkFetcher: retry/backoff behavior, deterministic jitter, deadlines,
// and the quarantine path for persistently corrupt archives.
#include "convert/fetcher.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/crc32.hpp"
#include "io/fault.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"

namespace gdelt::convert {
namespace {

using ::gdelt::testing::TempDir;

/// Writes a one-entry store-mode zip and returns its bytes.
std::string WriteArchive(const std::string& dir, const std::string& name,
                         const std::string& csv) {
  ZipWriter writer;
  EXPECT_TRUE(writer.Open(dir + "/" + name).ok());
  EXPECT_TRUE(writer.AddEntry("payload.csv", csv).ok());
  EXPECT_TRUE(writer.Finish().ok());
  auto bytes = ReadWholeFile(dir + "/" + name);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

FetchPolicy FastPolicy() {
  FetchPolicy policy;
  policy.backoff_initial_ms = 5;
  return policy;
}

TEST(FetcherTest, FetchesAndVerifiesValidArchive) {
  TempDir dir("fetchok");
  const std::string bytes = WriteArchive(dir.path(), "a.zip", "row1\nrow2\n");

  ChunkFetcher fetcher(FastPolicy());
  const auto csv = fetcher.FetchCsv(dir.path(), "a.zip", Crc32(bytes));
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv, "row1\nrow2\n");
  const FetchStats stats = fetcher.stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(FetcherTest, RetriesTransientFaultThenSucceeds) {
  TempDir dir("fetchretry");
  WriteArchive(dir.path(), "a.zip", "csv\n");

  ChunkFetcher fetcher(FastPolicy());
  std::vector<std::uint64_t> sleeps;
  fetcher.set_sleep_fn([&sleeps](std::uint64_t ms) { sleeps.push_back(ms); });

  // The first open fails; the second attempt sees a healthy mirror.
  fault::ScopedFaultInjection guard("open@1");
  const auto csv = fetcher.FetchCsv(dir.path(), "a.zip", std::nullopt);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv, "csv\n");
  const FetchStats stats = fetcher.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failures, 0u);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_GT(sleeps[0], 0u);
}

TEST(FetcherTest, QuarantinesPersistentlyCorruptArchive) {
  TempDir dir("fetchquar");
  const std::string bytes = WriteArchive(dir.path(), "bad.zip", "csv\n");

  FetchPolicy policy = FastPolicy();
  policy.max_attempts = 2;
  policy.quarantine_dir = dir.path() + "/quarantine";
  ChunkFetcher fetcher(policy);
  fetcher.set_sleep_fn([](std::uint64_t) {});

  // Every attempt re-verifies the CRC, so a wrong expectation never heals.
  const auto csv = fetcher.FetchCsv(dir.path(), "bad.zip", ~Crc32(bytes));
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.status().code(), StatusCode::kDataLoss);
  const FetchStats stats = fetcher.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_TRUE(FileExists(policy.quarantine_dir + "/bad.zip"));
  const auto reason =
      ReadWholeFile(policy.quarantine_dir + "/bad.zip.reason");
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason->find("checksum"), std::string::npos);
}

TEST(FetcherTest, MissingArchiveFailsWithoutQuarantineDir) {
  TempDir dir("fetchmissing");
  ChunkFetcher fetcher(FastPolicy());
  fetcher.set_sleep_fn([](std::uint64_t) {});
  EXPECT_FALSE(fetcher.FetchCsv(dir.path(), "absent.zip", std::nullopt).ok());
  const FetchStats stats = fetcher.stats();
  EXPECT_EQ(stats.attempts, fetcher.policy().max_attempts);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(FetcherTest, DeadlineBoundsTheRetryLoop) {
  TempDir dir("fetchdeadline");
  FetchPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_initial_ms = 50;
  policy.archive_deadline_ms = 0;  // any backoff sleep would overshoot
  ChunkFetcher fetcher(policy);
  std::vector<std::uint64_t> sleeps;
  fetcher.set_sleep_fn([&sleeps](std::uint64_t ms) { sleeps.push_back(ms); });

  const auto csv = fetcher.FetchCsv(dir.path(), "absent.zip", std::nullopt);
  ASSERT_FALSE(csv.ok());
  EXPECT_NE(csv.status().ToString().find("deadline"), std::string::npos);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(fetcher.stats().attempts, 1u);
}

TEST(FetcherTest, BackoffJitterIsDeterministicPerSeed) {
  TempDir dir("fetchjitter");
  FetchPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_ms = 40;
  policy.jitter_seed = 7;

  const auto capture = [&](const FetchPolicy& p) {
    ChunkFetcher fetcher(p);
    std::vector<std::uint64_t> sleeps;
    fetcher.set_sleep_fn(
        [&sleeps](std::uint64_t ms) { sleeps.push_back(ms); });
    EXPECT_FALSE(
        fetcher.FetchCsv(dir.path(), "absent.zip", std::nullopt).ok());
    return sleeps;
  };

  const auto first = capture(policy);
  const auto second = capture(policy);
  ASSERT_EQ(first.size(), 3u);  // one sleep before each retry
  EXPECT_EQ(first, second);
  for (const std::uint64_t ms : first) {
    EXPECT_LE(ms, policy.backoff_max_ms);
  }
  // Jittered exponential backoff: each delay sits in [cap/2, cap] of its
  // attempt's exponential base, so the floor doubles attempt over attempt.
  EXPECT_GE(first[0], policy.backoff_initial_ms / 2);
  EXPECT_GE(first[1], policy.backoff_initial_ms);
  EXPECT_GE(first[2], policy.backoff_initial_ms * 2);
}

}  // namespace
}  // namespace gdelt::convert
