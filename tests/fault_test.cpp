// Deterministic I/O fault injection: spec parsing, Nth-op firing, torn
// reads/writes, and bit-for-bit replayability of probabilistic faults.
#include "io/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"

namespace gdelt::fault {
namespace {

using ::gdelt::testing::TempDir;

TEST(FaultSpecTest, ParsesNthAndPermilleClauses) {
  auto cfg = ParseSpec("open@3");
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->clauses.size(), 1u);
  EXPECT_EQ(cfg->clauses[0].op, Op::kOpen);
  EXPECT_EQ(cfg->clauses[0].nth, 3u);
  EXPECT_EQ(cfg->seed, 0u);

  cfg = ParseSpec("read~50:7");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->clauses[0].op, Op::kRead);
  EXPECT_EQ(cfg->clauses[0].permille, 50u);
  EXPECT_EQ(cfg->seed, 7u);

  cfg = ParseSpec("write@2,trunc~10:42");
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->clauses.size(), 2u);
  EXPECT_EQ(cfg->clauses[0].op, Op::kWrite);
  EXPECT_EQ(cfg->clauses[1].op, Op::kTruncate);
  EXPECT_EQ(cfg->clauses[1].permille, 10u);
  EXPECT_EQ(cfg->seed, 42u);

  cfg = ParseSpec("kill@25");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->clauses[0].op, Op::kKill);
  EXPECT_EQ(cfg->clauses[0].nth, 25u);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSpec("").ok());
  EXPECT_FALSE(ParseSpec("bogus@1").ok());      // unknown op
  EXPECT_FALSE(ParseSpec("open").ok());         // no @N / ~M
  EXPECT_FALSE(ParseSpec("open@0").ok());       // Nth must be >= 1
  EXPECT_FALSE(ParseSpec("open@x").ok());       // bad count
  EXPECT_FALSE(ParseSpec("read~0").ok());       // permille out of range
  EXPECT_FALSE(ParseSpec("read~1001").ok());
  EXPECT_FALSE(ParseSpec("open@1:notaseed").ok());
}

TEST(FaultInjectorTest, FailsExactlyTheNthOpen) {
  TempDir dir("faultopen");
  const std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(WriteWholeFile(path, "payload").ok());

  ScopedFaultInjection guard("open@2");
  EXPECT_TRUE(ReadWholeFile(path).ok());                 // open #1
  const auto second = ReadWholeFile(path);               // open #2: fails
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(ReadWholeFile(path).ok());                 // open #3
  EXPECT_EQ(Global().injected(), 1u);
}

TEST(FaultInjectorTest, ReadFaultFailsCleanly) {
  TempDir dir("faultread");
  const std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(WriteWholeFile(path, "payload").ok());

  ScopedFaultInjection guard("read@1");
  const auto result = ReadWholeFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectorTest, TornReadKeepsStrictPrefix) {
  TempDir dir("faulttrunc");
  const std::string path = dir.path() + "/f.txt";
  const std::string payload(1000, 'x');
  ASSERT_TRUE(WriteWholeFile(path, payload).ok());

  ScopedFaultInjection guard("trunc@1:9");
  const auto result = ReadWholeFile(path);
  // A torn read succeeds with a short buffer — it models a truncated
  // file; downstream checksums are what must catch it.
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->size(), payload.size());
  EXPECT_EQ(*result, payload.substr(0, result->size()));
}

TEST(FaultInjectorTest, TornWriteLeavesPrefixAndFails) {
  TempDir dir("faultwrite");
  const std::string path = dir.path() + "/f.bin";
  const std::string payload(512, 'w');

  ScopedFaultInjection guard("write@1:3");
  BinaryWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  const Status torn = writer.WriteBytes(payload.data(), payload.size());
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  EXPECT_EQ(Global().injected(), 1u);
  (void)writer.Close();
  Global().Disarm();

  const auto on_disk = ReadWholeFile(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_LT(on_disk->size(), payload.size());
}

TEST(FaultInjectorTest, TruncatedZipEntryReadIsDataLoss) {
  TempDir dir("faultzip");
  const std::string zip_path = dir.path() + "/a.zip";
  ZipWriter writer;
  ASSERT_TRUE(writer.Open(zip_path).ok());
  ASSERT_TRUE(writer.AddEntry("a.csv", std::string(4096, 'z')).ok());
  ASSERT_TRUE(writer.Finish().ok());
  const auto bytes = ReadWholeFile(zip_path);
  ASSERT_TRUE(bytes.ok());
  auto reader = ZipReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());

  ScopedFaultInjection guard("trunc@1:5");
  const auto entry = reader->ReadEntry(std::size_t{0});
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kDataLoss);
}

TEST(FaultInjectorTest, ProbabilisticFaultsReplayBitForBit) {
  TempDir dir("faultreplay");
  const std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(WriteWholeFile(path, std::string(800, 'r')).ok());

  const auto run = [&path]() {
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 50; ++i) {
      const auto result = ReadWholeFile(path);
      sizes.push_back(result.ok() ? result->size() : std::size_t(-1));
    }
    return sizes;
  };
  std::vector<std::size_t> first;
  std::vector<std::size_t> second;
  {
    ScopedFaultInjection guard("trunc~400:123");
    first = run();
  }
  {
    ScopedFaultInjection guard("trunc~400:123");
    second = run();
  }
  EXPECT_EQ(first, second);
  // With a 40% rate over 50 reads, both full and torn results occur.
  bool torn = false;
  bool full = false;
  for (const std::size_t s : first) (s == 800 ? full : torn) = true;
  EXPECT_TRUE(torn);
  EXPECT_TRUE(full);
}

TEST(FaultInjectorTest, DisarmRestoresNormalIo) {
  TempDir dir("faultdisarm");
  const std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(WriteWholeFile(path, "payload").ok());
  {
    ScopedFaultInjection guard("open@1");
    EXPECT_FALSE(ReadWholeFile(path).ok());
  }
  EXPECT_FALSE(Global().armed());
  const auto result = ReadWholeFile(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "payload");
}

}  // namespace
}  // namespace gdelt::fault
