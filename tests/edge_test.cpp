// Edge-condition coverage: empty datasets end-to-end, degenerate inputs,
// and the logging utility.
#include <gtest/gtest.h>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/followreport.hpp"
#include "analysis/stats.hpp"
#include "analysis/tone.hpp"
#include "convert/converter.hpp"
#include "engine/filter.hpp"
#include "engine/queries.hpp"
#include "engine/sharded.hpp"
#include "io/file.hpp"
#include "test_util.hpp"
#include "util/logging.hpp"

namespace gdelt {
namespace {

using testing::TempDir;
using testing::TestDbBuilder;

/// A database with zero events and zero mentions, produced by running the
/// converter over an empty (but well-formed) raw directory.
class EmptyDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("empty");
    // Master list with no entries at all.
    ASSERT_TRUE(
        WriteWholeFile(dirs_->path() + "/masterfilelist.txt", "").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path();
    options.output_dir = dirs_->path() + "/db";
    auto report = convert::ConvertDataset(options);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->event_rows, 0u);
    EXPECT_EQ(report->mention_rows, 0u);
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new engine::Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dirs_;
  }
  static inline TempDir* dirs_ = nullptr;
  static inline engine::Database* db_ = nullptr;
};

TEST_F(EmptyDatabaseTest, SizesAreZero) {
  EXPECT_EQ(db_->num_events(), 0u);
  EXPECT_EQ(db_->num_mentions(), 0u);
  EXPECT_EQ(db_->num_sources(), 0u);
}

TEST_F(EmptyDatabaseTest, AllEngineQueriesAreSafe) {
  EXPECT_TRUE(engine::ArticlesPerSource(*db_).empty());
  EXPECT_TRUE(engine::TopSourcesByArticles(*db_, 10).empty());
  EXPECT_TRUE(engine::TopReportedEvents(*db_, 10).empty());
  EXPECT_TRUE(engine::ArticlesPerQuarter(*db_).values.empty());
  EXPECT_TRUE(engine::EventsPerQuarter(*db_).values.empty());
  EXPECT_TRUE(engine::ActiveSourcesPerQuarter(*db_).values.empty());
  const auto cross = engine::CountryCrossReporting(*db_);
  for (const auto v : cross.counts) EXPECT_EQ(v, 0u);
  EXPECT_TRUE(engine::SelectMentions(*db_, engine::MentionFilter{}).empty());
  const auto sharded = engine::ShardedCountryCrossReporting(*db_, 4);
  EXPECT_EQ(sharded.counts, cross.counts);
}

TEST_F(EmptyDatabaseTest, AllAnalysesAreSafe) {
  const auto stats = analysis::ComputeDatasetStatistics(*db_);
  EXPECT_EQ(stats.articles, 0u);
  EXPECT_EQ(stats.capture_intervals, 0u);
  EXPECT_DOUBLE_EQ(stats.weighted_avg_articles_per_event, 0.0);
  EXPECT_TRUE(analysis::PerSourceDelayStats(*db_).empty());
  const auto quarterly = analysis::QuarterlyDelayStats(*db_);
  EXPECT_TRUE(quarterly.average.empty());
  const auto coreport = analysis::ComputeCoReporting(*db_);
  EXPECT_EQ(coreport.size(), 0u);
  const auto country = analysis::ComputeCountryCoReporting(*db_);
  for (const auto c : country.event_counts) EXPECT_EQ(c, 0u);
  const auto first = analysis::ComputeFirstReports(*db_);
  EXPECT_EQ(first.events_broken_within_hour, 0u);
  const auto tone = analysis::ToneByQuadClass(*db_);
  EXPECT_EQ(tone.tone[1].count, 0u);
  EXPECT_DOUBLE_EQ(analysis::EventSizePowerLawAlpha(*db_, 1), 0.0);
}

TEST(SingleMentionTest, AllPathsWork) {
  TempDir dir("single");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(1600000, country::kUSA);
  builder.AddMention(e, 1600004, "only.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(analysis::ComputeDatasetStatistics(*db).capture_intervals, 1u);
  const auto stats = analysis::PerSourceDelayStats(*db);
  EXPECT_EQ(stats[0].min, 4);
  EXPECT_EQ(stats[0].max, 4);
  EXPECT_EQ(stats[0].median, 4);
  const auto follow = analysis::ComputeFollowReporting(
      *db, std::vector<std::uint32_t>{0});
  EXPECT_EQ(follow.FollowCount(0, 0), 0u);
  const auto active = engine::ActiveSourcesPerQuarter(*db);
  ASSERT_EQ(active.values.size(), 1u);
  EXPECT_EQ(active.values[0], 1u);
}

TEST(LoggingTest, LevelFilteringAndThreadSafety) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must respect the filter (no output assertion;
  // we only exercise the paths, including concurrent use).
  GDELT_LOG(kDebug, "suppressed");
  GDELT_LOG(kError, std::string("emitted to stderr (expected in test log)"));
  SetLogLevel(LogLevel::kDebug);
#pragma omp parallel for
  for (int i = 0; i < 8; ++i) {
    SetLogLevel(LogLevel::kWarning);  // racing set/get must be safe
    (void)GetLogLevel();
  }
  SetLogLevel(original);
}

TEST(ConvertEdgeTest, MasterListWithOnlyMalformedEntries) {
  TempDir dir("allbad");
  ASSERT_TRUE(WriteWholeFile(dir.path() + "/masterfilelist.txt",
                             "junk\nmore junk here\n")
                  .ok());
  convert::ConvertOptions options;
  options.input_dir = dir.path();
  options.output_dir = dir.path() + "/db";
  const auto report = convert::ConvertDataset(options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->malformed_master_entries, 2u);
  EXPECT_EQ(report->event_rows, 0u);
}

TEST(FollowEdgeTest, EmptySubset) {
  TempDir dir("followempty");
  TestDbBuilder builder;
  const auto e = builder.AddEvent(100);
  builder.AddMention(e, 101, "a.com");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto m = analysis::ComputeFollowReporting(*db, {});
  EXPECT_EQ(m.n, 0u);
}

}  // namespace
}  // namespace gdelt
