#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "columnar/csr.hpp"
#include "columnar/dictionary.hpp"
#include "columnar/table.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace gdelt {
namespace {

using testing::TempDir;

TEST(ColumnTest, FixedWidthAppendAndRead) {
  Column col(ColumnType::kU32);
  col.Append<std::uint32_t>(1);
  col.Append<std::uint32_t>(0xFFFFFFFF);
  ASSERT_EQ(col.size(), 2u);
  const auto values = col.Values<std::uint32_t>();
  EXPECT_EQ(values[0], 1u);
  EXPECT_EQ(values[1], 0xFFFFFFFFu);
}

TEST(ColumnTest, AllFixedTypes) {
  Column u8(ColumnType::kU8);
  u8.Append<std::uint8_t>(200);
  Column u16(ColumnType::kU16);
  u16.Append<std::uint16_t>(60000);
  Column u64(ColumnType::kU64);
  u64.Append<std::uint64_t>(1ull << 60);
  Column i64(ColumnType::kI64);
  i64.Append<std::int64_t>(-42);
  Column f64(ColumnType::kF64);
  f64.Append<double>(2.718);
  EXPECT_EQ(u8.Values<std::uint8_t>()[0], 200);
  EXPECT_EQ(u16.Values<std::uint16_t>()[0], 60000);
  EXPECT_EQ(u64.Values<std::uint64_t>()[0], 1ull << 60);
  EXPECT_EQ(i64.Values<std::int64_t>()[0], -42);
  EXPECT_DOUBLE_EQ(f64.Values<double>()[0], 2.718);
}

TEST(ColumnTest, StringColumn) {
  Column col(ColumnType::kStr);
  col.AppendString("alpha");
  col.AppendString("");
  col.AppendString("gamma");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.StringAt(0), "alpha");
  EXPECT_EQ(col.StringAt(1), "");
  EXPECT_EQ(col.StringAt(2), "gamma");
}

TEST(ColumnTest, ResizeFixedZeroFills) {
  Column col(ColumnType::kI64);
  col.ResizeFixed(5);
  ASSERT_EQ(col.size(), 5u);
  for (const auto v : col.Values<std::int64_t>()) EXPECT_EQ(v, 0);
}

TEST(TableTest, ValidateCatchesRaggedColumns) {
  Table t;
  t.AddColumn("a", ColumnType::kU32).Append<std::uint32_t>(1);
  t.AddColumn("b", ColumnType::kU32);
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, FindAndHasColumn) {
  Table t;
  t.AddColumn("x", ColumnType::kU8);
  EXPECT_TRUE(t.HasColumn("x"));
  EXPECT_FALSE(t.HasColumn("y"));
  EXPECT_NE(t.FindColumn("x"), nullptr);
  EXPECT_EQ(t.FindColumn("y"), nullptr);
}

Table MakeSampleTable(std::size_t rows) {
  Table t;
  auto& ids = t.AddColumn("id", ColumnType::kU64);
  auto& vals = t.AddColumn("val", ColumnType::kF64);
  auto& names = t.AddColumn("name", ColumnType::kStr);
  Xoshiro256 rng(99);
  for (std::size_t i = 0; i < rows; ++i) {
    ids.Append<std::uint64_t>(i * 7);
    vals.Append<double>(static_cast<double>(i) * 0.5);
    names.AppendString(i % 3 == 0 ? "" : "name" + std::to_string(i));
  }
  return t;
}

TEST(TableIoTest, WriteReadRoundTrip) {
  TempDir dir("table");
  const std::string path = dir.path() + "/t.tbl";
  const Table original = MakeSampleTable(1000);
  ASSERT_TRUE(original.WriteToFile(path).ok());

  auto loaded = Table::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 1000u);
  EXPECT_EQ(loaded->num_columns(), 3u);
  const auto ids = loaded->GetColumn("id").Values<std::uint64_t>();
  const auto vals = loaded->GetColumn("val").Values<double>();
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ids[i], i * 7);
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i) * 0.5);
    EXPECT_EQ(loaded->GetColumn("name").StringAt(i),
              original.GetColumn("name").StringAt(i));
  }
}

TEST(TableIoTest, EmptyTableRoundTrips) {
  TempDir dir("table0");
  const std::string path = dir.path() + "/t.tbl";
  Table t;
  t.AddColumn("a", ColumnType::kU32);
  t.AddColumn("s", ColumnType::kStr);
  ASSERT_TRUE(t.WriteToFile(path).ok());
  auto loaded = Table::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 0u);
}

TEST(TableIoTest, TruncationDetected) {
  TempDir dir("tablet");
  const std::string path = dir.path() + "/t.tbl";
  ASSERT_TRUE(MakeSampleTable(100).WriteToFile(path).ok());
  auto bytes = ReadWholeFile(path);
  ASSERT_TRUE(bytes.ok());
  for (const std::size_t cut : {std::size_t{1}, bytes->size() / 2,
                                bytes->size() - 1}) {
    const std::string truncated_path = dir.path() + "/trunc.tbl";
    ASSERT_TRUE(
        WriteWholeFile(truncated_path, bytes->substr(0, cut)).ok());
    EXPECT_EQ(Table::ReadFromFile(truncated_path).status().code(),
              StatusCode::kDataLoss)
        << "cut=" << cut;
  }
}

TEST(TableIoTest, BitFlipDetectedByChecksum) {
  TempDir dir("tablex");
  const std::string path = dir.path() + "/t.tbl";
  ASSERT_TRUE(MakeSampleTable(100).WriteToFile(path).ok());
  auto bytes = ReadWholeFile(path);
  ASSERT_TRUE(bytes.ok());
  // Flip one payload bit somewhere in the middle.
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x10;
  const std::string corrupt_path = dir.path() + "/c.tbl";
  ASSERT_TRUE(WriteWholeFile(corrupt_path, corrupt).ok());
  EXPECT_EQ(Table::ReadFromFile(corrupt_path).status().code(),
            StatusCode::kDataLoss);
}

TEST(TableIoTest, GarbageFileRejected) {
  TempDir dir("tableg");
  const std::string path = dir.path() + "/g.tbl";
  ASSERT_TRUE(WriteWholeFile(path, std::string(500, 'q')).ok());
  EXPECT_FALSE(Table::ReadFromFile(path).ok());
}

// Overwrites `len` bytes at `offset` of a written table file and then
// refreshes the CRC footer, so the forgery passes the checksum gate and
// reaches the parser. This is how a corrupt-yet-CRC-consistent (or
// malicious) file looks to ReadFromFile; the parser must reject it from
// its own bounds checks, not by luck of the checksum.
std::string ForgeTableFile(std::string bytes, std::size_t offset,
                           const void* field, std::size_t len) {
  EXPECT_LE(offset + len, bytes.size());
  std::memcpy(bytes.data() + offset, field, len);
  const std::size_t footer =
      sizeof(std::uint64_t) + sizeof(std::uint32_t) + 8 /* tail magic */;
  const std::size_t body = bytes.size() - footer;
  const std::uint32_t crc = Crc32Update(0, bytes.data(), body);
  std::memcpy(bytes.data() + body + sizeof(std::uint64_t), &crc,
              sizeof(crc));
  return bytes;
}

// Body layout: magic[8], version u32 @8, num_columns u32 @12,
// num_rows u64 @16, then per-column descriptors.
constexpr std::size_t kNumColumnsOffset = 12;
constexpr std::size_t kNumRowsOffset = 16;

// A file claiming 4 billion columns is 300+ GiB of descriptor
// allocations if the parser trusts the count. Must fail cleanly (no
// allocation, no crash) because only a few hundred bytes follow.
TEST(TableIoTest, HugeColumnCountRejectedBeforeAllocating) {
  TempDir dir("tablehc");
  const std::string path = dir.path() + "/t.tbl";
  ASSERT_TRUE(MakeSampleTable(100).WriteToFile(path).ok());
  auto bytes = ReadWholeFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::uint32_t huge = 0xFFFFFFFFu;
  const std::string forged =
      ForgeTableFile(*bytes, kNumColumnsOffset, &huge, sizeof(huge));
  ASSERT_TRUE(WriteWholeFile(path, forged).ok());
  EXPECT_EQ(Table::ReadFromFile(path).status().code(),
            StatusCode::kDataLoss);
}

// Row counts near 2^64 make (num_rows + 1) * 8 wrap around, so the
// "expected payload" arithmetic would pass while resize() asks for the
// unwrapped amount. Both the overflow-adjacent and the merely-huge case
// must be DataLoss, not a multi-exabyte allocation.
TEST(TableIoTest, HugeRowCountRejected) {
  TempDir dir("tablehr");
  for (const std::uint64_t rows :
       {std::numeric_limits<std::uint64_t>::max() - 1,
        std::uint64_t{1} << 60}) {
    const std::string path = dir.path() + "/t.tbl";
    ASSERT_TRUE(MakeSampleTable(100).WriteToFile(path).ok());
    auto bytes = ReadWholeFile(path);
    ASSERT_TRUE(bytes.ok());
    const std::string forged =
        ForgeTableFile(*bytes, kNumRowsOffset, &rows, sizeof(rows));
    ASSERT_TRUE(WriteWholeFile(path, forged).ok());
    EXPECT_EQ(Table::ReadFromFile(path).status().code(),
              StatusCode::kDataLoss)
        << "rows=" << rows;
  }
}

// A string column whose descriptor claims more character bytes than the
// file holds must be rejected before the chars vector is sized.
TEST(TableIoTest, OversizedCharsFieldRejected) {
  TempDir dir("tablesc");
  const std::string path = dir.path() + "/t.tbl";
  ASSERT_TRUE(MakeSampleTable(100).WriteToFile(path).ok());
  auto bytes = ReadWholeFile(path);
  ASSERT_TRUE(bytes.ok());
  // Locate the "name" column descriptor (u32 length 4 + the characters)
  // in the header region; chars_bytes sits after the name, the u8 type
  // and the u64 payload size.
  const std::string needle{"\x04\x00\x00\x00name", 8};
  const std::size_t pos = bytes->find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t chars_bytes_offset =
      pos + needle.size() + sizeof(std::uint8_t) + sizeof(std::uint64_t);
  const std::uint64_t huge = 1ull << 62;
  const std::string forged =
      ForgeTableFile(*bytes, chars_bytes_offset, &huge, sizeof(huge));
  ASSERT_TRUE(WriteWholeFile(path, forged).ok());
  EXPECT_EQ(Table::ReadFromFile(path).status().code(),
            StatusCode::kDataLoss);
}

TEST(DictionaryTest, DenseFirstSeenIds) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.At(1), "b");
  EXPECT_EQ(*dict.Find("a"), 0u);
  EXPECT_FALSE(dict.Find("c").has_value());
}

TEST(DictionaryTest, SurvivesRehashWithShortStrings) {
  // Regression: short (SSO) strings must keep valid index keys as the
  // container grows.
  StringDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    dict.GetOrAdd(std::to_string(i));
  }
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(*dict.Find(std::to_string(i)), static_cast<std::uint32_t>(i));
  }
}

TEST(DictionaryTest, FileRoundTrip) {
  TempDir dir("dict");
  StringDictionary dict;
  dict.GetOrAdd("herald0.co.uk");
  dict.GetOrAdd("star0.com");
  dict.GetOrAdd("");
  const std::string path = dir.path() + "/d.dict";
  ASSERT_TRUE(dict.WriteToFile(path).ok());
  auto loaded = StringDictionary::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->At(0), "herald0.co.uk");
  EXPECT_EQ(*loaded->Find("star0.com"), 1u);
  EXPECT_EQ(*loaded->Find(""), 2u);
}

TEST(CsrTest, GroupsRowsByKey) {
  const std::vector<std::uint32_t> keys{2, 0, 2, 1, 2, 0};
  const CsrIndex csr = BuildCsrIndex(keys, 3);
  ASSERT_EQ(csr.num_keys(), 3u);
  EXPECT_EQ(csr.CountOf(0), 2u);
  EXPECT_EQ(csr.CountOf(1), 1u);
  EXPECT_EQ(csr.CountOf(2), 3u);
  const auto rows0 = csr.RowsOf(0);
  EXPECT_EQ(std::vector<std::uint64_t>(rows0.begin(), rows0.end()),
            (std::vector<std::uint64_t>{1, 5}));
  const auto rows2 = csr.RowsOf(2);
  EXPECT_EQ(std::vector<std::uint64_t>(rows2.begin(), rows2.end()),
            (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(CsrTest, EmptyKeysAndEmptyGroups) {
  const CsrIndex csr = BuildCsrIndex({}, 4);
  EXPECT_EQ(csr.num_keys(), 4u);
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_EQ(csr.CountOf(k), 0u);
}

TEST(CsrTest, LargeRandomRoundTrip) {
  Xoshiro256 rng(123);
  const std::size_t n = 100000;
  const std::size_t num_keys = 500;
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(UniformBelow(rng, num_keys));
  }
  const CsrIndex csr = BuildCsrIndex(keys, num_keys);
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < num_keys; ++k) {
    std::uint64_t prev = 0;
    bool first = true;
    for (const std::uint64_t row : csr.RowsOf(k)) {
      ASSERT_EQ(keys[row], k);
      if (!first) {
        ASSERT_GT(row, prev) << "rows must stay ascending";
      }
      prev = row;
      first = false;
      ++total;
    }
  }
  EXPECT_EQ(total, n);
}

}  // namespace
}  // namespace gdelt
