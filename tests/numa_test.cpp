#include "parallel/numa.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gdelt {
namespace {

TEST(NumaTest, DetectsAtLeastOneNode) {
  const NumaTopology topo = DetectNumaTopology();
  ASSERT_GE(topo.num_nodes(), 1);
  EXPECT_GE(topo.num_cpus(), 1u);
  for (const auto& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty());
  }
  EXPECT_FALSE(topo.ToString().empty());
}

TEST(NumaTest, FirstTouchZeroesAcrossPages) {
  std::vector<unsigned char> buf(4096 * 8 + 123, 0xFF);
  FirstTouchParallel(buf.data(), buf.size());
  // One byte per page is zeroed; everything else untouched.
  for (std::size_t page = 0; page * 4096 < buf.size(); ++page) {
    EXPECT_EQ(buf[page * 4096], 0);
  }
  EXPECT_EQ(buf[1], 0xFF);
}

TEST(NumaTest, WarmPagesDoesNotModify) {
  std::vector<unsigned char> buf(4096 * 4 + 7);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 31);
  }
  const auto copy = buf;
  WarmPagesParallel(buf.data(), buf.size());
  EXPECT_EQ(buf, copy);
}

TEST(NumaTest, WarmEmptyBufferIsSafe) {
  WarmPagesParallel(nullptr, 0);
  FirstTouchParallel(nullptr, 0);
}

TEST(NumaTest, RoundRobinPinningDoesNotCrash) {
  // Pinning may fail in restricted sandboxes; the call must stay safe.
  const NumaTopology topo = DetectNumaTopology();
  PinOpenMpThreadsRoundRobin(topo);
}

}  // namespace
}  // namespace gdelt
