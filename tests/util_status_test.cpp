#include "util/status.hpp"

#include <gtest/gtest.h>

namespace gdelt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = status::ParseError("bad row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad row");
  EXPECT_EQ(s.ToString(), "ParseError: bad row");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Status FailingOp() { return status::IoError("disk"); }
Status UsesReturnIfError() {
  GDELT_RETURN_IF_ERROR(FailingOp());
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  const Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

Result<int> GiveInt(bool ok) {
  if (!ok) return status::Internal("nope");
  return 5;
}
Status UsesAssignOrReturn(bool ok, int& out) {
  GDELT_ASSIGN_OR_RETURN(const int v, GiveInt(ok));
  out = v + 1;
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnBothPaths) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, out).ok());
  EXPECT_EQ(out, 6);
  out = 0;
  EXPECT_EQ(UsesAssignOrReturn(false, out).code(), StatusCode::kInternal);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace gdelt
