// Round-trip tests for the partial-aggregate layer (serve/partial.hpp):
// every decomposable query kind, rendered as per-shard frames and merged
// back, must reproduce the single-node renderer's text byte for byte —
// at 2 and 4 shards, under both matrix encodings, restricted and not.
// Plus the merger's rejection paths: wrong version, duplicate shards,
// mismatched kinds, frames from a different partition count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.hpp"
#include "parallel/parallel.hpp"
#include "serve/json.hpp"
#include "serve/partial.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "test_util.hpp"

namespace gdelt::serve {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

constexpr const char* kPartialKinds[] = {
    "top-sources", "top-events",       "coreport",
    "follow",      "country-coreport", "cross-report",
    "delay",       "first-reports",
};

/// Restores the process-global matrix encoding on scope exit so a
/// failing test cannot poison its neighbors.
class EncodingGuard {
 public:
  explicit EncodingGuard(PartialMatrixEncoding enc) {
    SetPartialMatrixEncoding(enc);
  }
  ~EncodingGuard() { SetPartialMatrixEncoding(PartialMatrixEncoding::kAuto); }
};

class PartialMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("partial");
    TestDbBuilder builder;
    // Enough events, countries and sources that every kind has real
    // structure to split: co-reporting pairs spanning partition
    // boundaries, repeat mentions for first-reports, multi-mention
    // events for delay medians, three countries for the country kinds.
    std::vector<std::uint64_t> events;
    for (int i = 0; i < 14; ++i) {
      const CountryId country =
          i % 4 == 3 ? kNoCountry : static_cast<CountryId>(1 + i % 3);
      events.push_back(builder.AddEvent(100 * (i + 1), country));
    }
    const char* sources[] = {"a.com", "b.com", "c.com",
                             "d.com", "e.com", "f.com"};
    int tick = 0;
    for (std::size_t e = 0; e < events.size(); ++e) {
      // Every event is mentioned by a sliding window of sources so
      // adjacent partitions share pairs.
      for (std::size_t s = 0; s < 3; ++s) {
        const char* source = sources[(e + s) % 6];
        const auto when =
            static_cast<std::int64_t>(100 * (e + 1) + 1 + s + (tick++ % 5));
        const auto confidence = static_cast<std::uint8_t>(30 + 10 * s);
        builder.AddMention(events[e], when, source, confidence);
      }
      // Repeat mention: the windows's first source covers it again later
      // (first-reports repeat-rate fodder).
      if (e % 2 == 0) {
        builder.AddMention(events[e],
                           static_cast<std::int64_t>(100 * (e + 1) + 40),
                           sources[e % 6], 90);
      }
    }
    auto db = builder.Build(dir_->path());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<engine::Database>(std::move(*db));
  }

  static Request MakeRequest(const std::string& kind, std::size_t top,
                             const std::string& extra = "") {
    std::string line = "{\"query\":\"" + kind + "\",\"top\":" +
                       std::to_string(top) + extra + "}";
    auto r = ParseRequest(line);
    EXPECT_TRUE(r.ok()) << line << ": " << r.status().ToString();
    return r.ok() ? *r : Request{};
  }

  std::string SingleNode(const Request& r) {
    auto rendered = RenderQuery(*db_, r);
    EXPECT_TRUE(rendered.ok()) << rendered.status().ToString();
    return rendered.ok() ? rendered->text : std::string();
  }

  /// Renders every partition of `r`, parses the frames and merges them.
  Result<std::string> ViaPartials(const Request& r, std::uint32_t of) {
    std::vector<JsonValue> frames;
    for (std::uint32_t shard = 0; shard < of; ++shard) {
      Request sub = r;
      sub.partial = true;
      sub.shard = shard;
      sub.of = of;
      auto frame =
          RenderPartialFrame(*db_, sub, parallel::Backend::kMorselPool);
      GDELT_RETURN_IF_ERROR(frame.status());
      auto parsed = JsonValue::Parse(frame->text);
      GDELT_RETURN_IF_ERROR(parsed.status());
      frames.push_back(std::move(*parsed));
    }
    return MergePartialFrames(r, frames);
  }

  void ExpectRoundTrip(const Request& r) {
    const std::string truth = SingleNode(r);
    ASSERT_FALSE(truth.empty());
    for (const std::uint32_t of : {2u, 4u}) {
      auto merged = ViaPartials(r, of);
      ASSERT_TRUE(merged.ok())
          << r.kind << " of=" << of << ": " << merged.status().ToString();
      EXPECT_EQ(*merged, truth) << r.kind << " of=" << of;
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<engine::Database> db_;
};

TEST_F(PartialMergeTest, AllKindsRoundTripByteIdentically) {
  for (const char* kind : kPartialKinds) {
    ExpectRoundTrip(MakeRequest(kind, 3));
  }
}

TEST_F(PartialMergeTest, TopLargerThanUniverseRoundTrips) {
  for (const char* kind : kPartialKinds) {
    ExpectRoundTrip(MakeRequest(kind, 50));
  }
}

TEST_F(PartialMergeTest, RestrictedKindsRoundTrip) {
  // The filterable kinds, under a confidence floor and a time window
  // that both actually drop mentions.
  for (const char* kind : {"top-sources", "coreport", "cross-report"}) {
    ExpectRoundTrip(MakeRequest(kind, 3, ",\"min_confidence\":45"));
    ExpectRoundTrip(
        MakeRequest(kind, 3, ",\"from\":\"20150101000000\""));
  }
}

TEST_F(PartialMergeTest, DenseEncodingRoundTrips) {
  EncodingGuard guard(PartialMatrixEncoding::kDense);
  for (const char* kind :
       {"coreport", "follow", "country-coreport", "cross-report"}) {
    ExpectRoundTrip(MakeRequest(kind, 4));
  }
}

TEST_F(PartialMergeTest, SparseEncodingRoundTrips) {
  EncodingGuard guard(PartialMatrixEncoding::kSparse);
  for (const char* kind :
       {"coreport", "follow", "country-coreport", "cross-report"}) {
    ExpectRoundTrip(MakeRequest(kind, 4));
  }
}

TEST_F(PartialMergeTest, MoreShardsThanEventsRoundTrips) {
  // 32 partitions over 14 events: the tail partitions are empty (the
  // range splitter clamps), and their frames must merge as no-ops.
  const Request r = MakeRequest("coreport", 3);
  const std::string truth = SingleNode(r);
  auto merged = ViaPartials(r, 32);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, truth);
}

TEST_F(PartialMergeTest, SubsetOfFramesMergesDegraded) {
  // Degraded mode: merging only shard 0 of 2 must still succeed (the
  // router reports the missing shard separately); the text undercounts
  // rather than erroring.
  const Request r = MakeRequest("top-sources", 3);
  Request sub = r;
  sub.partial = true;
  sub.shard = 0;
  sub.of = 2;
  auto frame = RenderPartialFrame(*db_, sub, parallel::Backend::kMorselPool);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto parsed = JsonValue::Parse(frame->text);
  ASSERT_TRUE(parsed.ok());
  std::vector<JsonValue> frames;
  frames.push_back(std::move(*parsed));
  auto merged = MergePartialFrames(r, frames);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->empty());
}

TEST_F(PartialMergeTest, WireLineReproducesInProcessFrame) {
  // The request line the router actually sends, parsed back through the
  // strict protocol parser, must select the same partition.
  const Request r = MakeRequest("follow", 3);
  const std::string line = BuildShardRequestLine(r, 1, 2);
  auto sub = ParseRequest(line);
  ASSERT_TRUE(sub.ok()) << line << ": " << sub.status().ToString();
  EXPECT_TRUE(sub->partial);
  EXPECT_EQ(sub->shard, 1u);
  EXPECT_EQ(sub->of, 2u);
  auto wire = RenderPartialFrame(*db_, *sub, parallel::Backend::kMorselPool);
  ASSERT_TRUE(wire.ok());

  Request direct = r;
  direct.partial = true;
  direct.shard = 1;
  direct.of = 2;
  auto in_process =
      RenderPartialFrame(*db_, direct, parallel::Backend::kMorselPool);
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(wire->text, in_process->text);
}

TEST_F(PartialMergeTest, MergerRejectsBadFrames) {
  const Request r = MakeRequest("top-sources", 3);
  Request sub = r;
  sub.partial = true;
  sub.shard = 0;
  sub.of = 2;
  auto frame = RenderPartialFrame(*db_, sub, parallel::Backend::kMorselPool);
  ASSERT_TRUE(frame.ok());
  const std::string good = frame->text;

  const auto merge_one = [&r](const std::string& text) {
    auto parsed = JsonValue::Parse(text);
    EXPECT_TRUE(parsed.ok()) << text;
    std::vector<JsonValue> frames;
    frames.push_back(std::move(*parsed));
    return MergePartialFrames(r, frames);
  };

  // Wrong protocol revision.
  {
    std::string bad = good;
    const auto pos = bad.find("\"v\":1");
    ASSERT_NE(pos, std::string::npos) << good;
    bad.replace(pos, 5, "\"v\":2");
    EXPECT_FALSE(merge_one(bad).ok());
  }
  // Frame for a different kind.
  {
    std::string bad = good;
    const auto pos = bad.find("top-sources");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 11, "follow-xxxx");
    EXPECT_FALSE(merge_one(bad).ok());
  }
  // Not an object.
  EXPECT_FALSE(merge_one("[1,2,3]").ok());

  // Duplicate shard ids.
  {
    auto parsed = JsonValue::Parse(good);
    ASSERT_TRUE(parsed.ok());
    std::vector<JsonValue> frames;
    frames.push_back(*parsed);
    frames.push_back(std::move(*parsed));
    EXPECT_FALSE(MergePartialFrames(r, frames).ok());
  }
  // Mixed partition counts: an of=4 frame next to an of=2 frame.
  {
    Request other = r;
    other.partial = true;
    other.shard = 1;
    other.of = 4;
    auto other_frame =
        RenderPartialFrame(*db_, other, parallel::Backend::kMorselPool);
    ASSERT_TRUE(other_frame.ok());
    auto a = JsonValue::Parse(good);
    auto b = JsonValue::Parse(other_frame->text);
    ASSERT_TRUE(a.ok() && b.ok());
    std::vector<JsonValue> frames;
    frames.push_back(std::move(*a));
    frames.push_back(std::move(*b));
    EXPECT_FALSE(MergePartialFrames(r, frames).ok());
  }
}

TEST_F(PartialMergeTest, MergerRejectsOversizedAllocationClaims) {
  // Frame fields that size merger-side allocations (the seen-shard
  // table, the n*n co-report accumulator, the quarterly delay arrays)
  // must be bounded BEFORE the allocation happens: a hostile frame
  // claiming of=2^62 or q_count=2^62 has to come back as a frame error,
  // not a multi-exabyte vector::assign.
  const auto merge_one = [](const Request& req, const std::string& text) {
    auto parsed = JsonValue::Parse(text);
    EXPECT_TRUE(parsed.ok()) << text;
    std::vector<JsonValue> frames;
    frames.push_back(std::move(*parsed));
    return MergePartialFrames(req, frames);
  };
  const auto render_frame = [this](const Request& req) {
    Request sub = req;
    sub.partial = true;
    sub.shard = 0;
    sub.of = 2;
    auto frame = RenderPartialFrame(*db_, sub, parallel::Backend::kMorselPool);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok() ? frame->text : std::string();
  };

  // Frame 'of' beyond kMaxPartitions sizes the seen-shard table.
  {
    const Request r = MakeRequest("top-sources", 3);
    std::string bad = render_frame(r);
    const auto pos = bad.find("\"of\":2");
    ASSERT_NE(pos, std::string::npos) << bad;
    bad.replace(pos, 6, "\"of\":4611686018427387904");
    auto merged = merge_one(r, bad);
    EXPECT_FALSE(merged.ok());
    EXPECT_NE(merged.status().ToString().find("partition limit"),
              std::string::npos)
        << merged.status().ToString();
  }
  // A subset larger than the requested top_k sizes the n*n accumulator
  // in the matrix merges; the shard can never honestly report more than
  // it was asked for.
  for (const char* kind : {"coreport", "follow"}) {
    const std::string good = render_frame(MakeRequest(kind, 3));
    ASSERT_FALSE(good.empty());
    const Request small = MakeRequest(kind, 2);
    auto merged = merge_one(small, good);
    EXPECT_FALSE(merged.ok()) << kind;
    EXPECT_NE(merged.status().ToString().find("larger than requested top_k"),
              std::string::npos)
        << kind << ": " << merged.status().ToString();
  }
  // Delay frames carry q_count, which sizes two quarterly arrays.
  {
    const Request r = MakeRequest("delay", 3);
    std::string bad = render_frame(r);
    const auto pos = bad.find("\"q_count\":");
    ASSERT_NE(pos, std::string::npos) << bad;
    auto end = pos + 10;
    while (end < bad.size() && bad[end] >= '0' && bad[end] <= '9') ++end;
    bad.replace(pos, end - pos, "\"q_count\":4611686018427387904");
    auto merged = merge_one(r, bad);
    EXPECT_FALSE(merged.ok());
    EXPECT_NE(merged.status().ToString().find("quarterly span"),
              std::string::npos)
        << merged.status().ToString();
  }
}

TEST_F(PartialMergeTest, ParserRejectsBadPartialRequests) {
  // Partial execution of an order-sensitive kind is refused up front.
  EXPECT_FALSE(
      ParseRequest(R"({"query":"stats","partial":true})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"query":"tone","partial":true,"shard":0,"of":2})")
          .ok());
  // Shard out of range.
  EXPECT_FALSE(
      ParseRequest(
          R"({"query":"coreport","partial":true,"shard":2,"of":2})")
          .ok());
  // shard/of without partial.
  EXPECT_FALSE(
      ParseRequest(R"({"query":"coreport","shard":0,"of":2})").ok());
}

}  // namespace
}  // namespace gdelt::serve
