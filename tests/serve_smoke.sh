#!/bin/sh
# End-to-end smoke test of the serving path: generate a mini dataset,
# convert it, start gdelt_serve, run a client batch over every query
# kind, check the responses, and shut the daemon down with SIGTERM.
set -e
BIN_DIR="$1"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN_DIR/gdelt_generate" --preset tiny --seed 7 --out "$WORK/raw" \
    > "$WORK/gen.log" 2>&1
"$BIN_DIR/gdelt_convert" --in "$WORK/raw" --out "$WORK/db" \
    > "$WORK/conv.log" 2>&1

"$BIN_DIR/gdelt_serve" --db "$WORK/db" --port 0 --workers 2 \
    > "$WORK/serve.out" 2> "$WORK/serve.log" &
SERVE_PID=$!

# The daemon prints "READY port=<n>" once it is listening.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^READY port=\([0-9]*\)$/\1/p' "$WORK/serve.out")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server never became ready" >&2; exit 1; }

# A batch over every query kind, one twice to exercise the cache, plus
# metrics. Exit code 0 requires every response to be ok:true.
{
  for q in stats top-sources top-events quarterly coreport follow \
           country-coreport cross-report delay tone first-reports; do
    printf '{"id":"%s","query":"%s","top":5}\n' "$q" "$q"
  done
  printf '{"id":"again","query":"stats","top":5}\n'
  printf '{"id":"m","query":"metrics"}\n'
} | "$BIN_DIR/gdelt_client" --port "$PORT" > "$WORK/batch.out"

# 13 non-empty response lines, all ok, the repeat served from cache.
test "$(wc -l < "$WORK/batch.out")" -eq 13
! grep -q '"ok":false' "$WORK/batch.out"
grep -q '"id":"again","ok":true.*"cached":true' "$WORK/batch.out"
grep -q '"cache_hits":' "$WORK/batch.out"

# Structured errors for garbage and unknown queries.
printf 'not json\n{"query":"bogus"}\n' \
    | "$BIN_DIR/gdelt_client" --port "$PORT" > "$WORK/err.out" || true
grep -q '"code":"bad_request"' "$WORK/err.out"
grep -q '"code":"unknown_query"' "$WORK/err.out"

# Graceful SIGTERM: the daemon drains and exits zero.
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "server ignored SIGTERM" >&2; exit 1; }
  sleep 0.1
done
wait "$SERVE_PID"
SERVE_PID=""
grep -q "drained" "$WORK/serve.log"
echo "serve smoke OK"
