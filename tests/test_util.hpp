// Shared helpers for the test suite.
//
// TestDbBuilder constructs a binary database directly (bypassing CSV) so
// unit tests can assert exact analysis results on hand-authored rows.
// PipelineFixture runs the full generate -> emit -> convert -> load chain
// in a temp directory for integration tests.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/dictionary.hpp"
#include "columnar/table.hpp"
#include "convert/binary_format.hpp"
#include "engine/database.hpp"
#include "util/status.hpp"

namespace gdelt::testing {

/// Creates a unique temporary directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("gdelt_test_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// Builds a binary database from explicit rows.
class TestDbBuilder {
 public:
  /// Adds an event; returns its global id.
  std::uint64_t AddEvent(std::int64_t event_interval,
                         CountryId country = kNoCountry,
                         const std::string& source_url = "http://x/") {
    Event ev;
    ev.global_id = next_id_++;
    ev.event_interval = event_interval;
    ev.added_interval = event_interval + 1;
    ev.country = country;
    ev.source_url = source_url;
    events_.push_back(ev);
    return ev.global_id;
  }

  /// Adds a mention of an event by a named source at a capture interval.
  void AddMention(std::uint64_t event_global_id, std::int64_t mention_interval,
                  const std::string& source_domain,
                  std::uint8_t confidence = 100) {
    Mention m;
    m.event_global_id = event_global_id;
    m.mention_interval = mention_interval;
    m.source = source_domain;
    m.confidence = confidence;
    mentions_.push_back(m);
  }

  /// Writes events.tbl / mentions.tbl / sources.dict into `dir`.
  Status WriteTo(const std::string& dir);

  /// Convenience: write to a TempDir and load.
  Result<engine::Database> Build(const std::string& dir) {
    GDELT_RETURN_IF_ERROR(WriteTo(dir));
    return engine::Database::Load(dir);
  }

 private:
  struct Event {
    std::uint64_t global_id;
    std::int64_t event_interval;
    std::int64_t added_interval;
    CountryId country;
    std::string source_url;
  };
  struct Mention {
    std::uint64_t event_global_id;
    std::int64_t mention_interval;
    std::string source;
    std::uint8_t confidence;
  };

  std::uint64_t next_id_ = 1000;
  std::vector<Event> events_;
  std::vector<Mention> mentions_;
};

}  // namespace gdelt::testing
