#include "stream/delta_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "convert/converter.hpp"
#include "convert/master_list.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"
#include "util/strings.hpp"

namespace gdelt::stream {
namespace {

using ::gdelt::testing::TempDir;

/// Splits a generated raw dataset: chunks before `cut` form the base (via
/// the converter); chunks from `cut` on are streamed into a DeltaStore.
class StreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("stream");
    auto cfg = gen::GeneratorConfig::Tiny();
    cfg.defect_missing_archives = 0;
    cfg.defect_malformed_master_entries = 0;
    dataset_ = new gen::RawDataset(gen::GenerateDataset(cfg));
    ASSERT_TRUE(
        gen::EmitDataset(*dataset_, cfg, dirs_->path() + "/raw").ok());

    // Enumerate chunk archives from the master list, in order.
    auto master = ReadWholeFile(dirs_->path() + "/raw/masterfilelist.txt");
    ASSERT_TRUE(master.ok());
    const auto list = convert::ParseMasterList(*master);
    std::vector<std::string> exports;
    std::vector<std::string> mentions;
    for (const auto& e : list.entries) {
      if (e.kind == convert::ArchiveKind::kExport) {
        exports.push_back(e.file_name);
      } else if (e.kind == convert::ArchiveKind::kMentions) {
        mentions.push_back(e.file_name);
      }
    }
    ASSERT_EQ(exports.size(), mentions.size());
    const std::size_t cut = exports.size() * 3 / 4;

    // Base: copy the first `cut` chunks plus a reduced master list.
    ASSERT_TRUE(MakeDirectories(dirs_->path() + "/base").ok());
    std::string base_master;
    for (std::size_t i = 0; i < cut; ++i) {
      for (const std::string* name : {&exports[i], &mentions[i]}) {
        auto bytes = ReadWholeFile(dirs_->path() + "/raw/" + *name);
        ASSERT_TRUE(bytes.ok());
        ASSERT_TRUE(WriteWholeFile(dirs_->path() + "/base/" + *name, *bytes)
                        .ok());
        base_master += StrFormat("%zu %08x ", bytes->size(), Crc32(*bytes));
        base_master += *name;
        base_master += '\n';
      }
    }
    ASSERT_TRUE(WriteWholeFile(dirs_->path() + "/base/masterfilelist.txt",
                               base_master)
                    .ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/base";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = engine::Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok());
    db_ = new engine::Database(std::move(*db));

    // Stream the tail chunks.
    delta_ = new DeltaStore(db_);
    for (std::size_t i = cut; i < exports.size(); ++i) {
      ASSERT_TRUE(delta_
                      ->IngestArchivePair(
                          dirs_->path() + "/raw/" + exports[i],
                          dirs_->path() + "/raw/" + mentions[i])
                      .ok());
    }
  }
  static void TearDownTestSuite() {
    delete delta_;
    delete db_;
    delete dataset_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline gen::RawDataset* dataset_ = nullptr;
  static inline engine::Database* db_ = nullptr;
  static inline DeltaStore* delta_ = nullptr;
};

TEST_F(StreamTest, CombinedTotalsEqualGroundTruth) {
  EXPECT_EQ(delta_->CombinedMentionCount(), dataset_->truth.num_mentions);
  EXPECT_EQ(db_->num_events() + delta_->delta_events(),
            dataset_->truth.num_events);
  EXPECT_EQ(delta_->malformed_rows(), 0u);
  EXPECT_GT(delta_->delta_mentions(), 0u);
}

TEST_F(StreamTest, CombinedArticlesPerSourceEqualGroundTruth) {
  const auto counts = delta_->CombinedArticlesPerSource();
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < delta_->num_sources(); ++s) {
    total += counts[s];
    // Ground-truth lookup by domain.
    const std::string domain(delta_->source_domain(s));
    bool found = false;
    for (std::size_t w = 0; w < dataset_->world.sources.size(); ++w) {
      if (dataset_->world.sources[w].domain == domain) {
        EXPECT_EQ(counts[s], dataset_->truth.articles_per_source[w])
            << domain;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << domain;
  }
  EXPECT_EQ(total, dataset_->truth.num_mentions);
}

TEST_F(StreamTest, CombinedCountryCountsEqualGroundTruth) {
  // Brute force from the generator's records: articles about USA events.
  std::uint64_t expected = 0;
  std::unordered_map<std::uint64_t, CountryId> loc;
  for (const auto& ev : dataset_->events) {
    loc[ev.global_event_id] = ev.location;
  }
  for (const auto& m : dataset_->mentions) {
    if (loc[m.global_event_id] == country::kUSA) ++expected;
  }
  EXPECT_EQ(delta_->CombinedArticlesAboutCountry(country::kUSA), expected);
}

TEST_F(StreamTest, TopSourcesAreConsistentWithCounts) {
  const auto counts = delta_->CombinedArticlesPerSource();
  const auto top = delta_->CombinedTopSources(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(counts[top[i - 1]], counts[top[i]]);
  }
}

TEST_F(StreamTest, CombinedArticlesPerSourceMatchesFullConversion) {
  // Convert the entire raw dataset in one shot; the streamed base+delta
  // combination must agree with it per domain (id spaces differ).
  convert::ConvertOptions options;
  options.input_dir = dirs_->path() + "/raw";
  options.output_dir = dirs_->path() + "/fulldb";
  ASSERT_TRUE(convert::ConvertDataset(options).ok());
  auto full = engine::Database::Load(dirs_->path() + "/fulldb");
  ASSERT_TRUE(full.ok());
  const auto full_counts = engine::ArticlesPerSource(*full);
  std::unordered_map<std::string, std::uint64_t> by_domain;
  for (std::uint32_t s = 0; s < full->num_sources(); ++s) {
    by_domain[std::string(full->source_domain(s))] = full_counts[s];
  }
  const auto combined = delta_->CombinedArticlesPerSource();
  std::uint64_t combined_total = 0;
  for (std::uint32_t s = 0; s < delta_->num_sources(); ++s) {
    combined_total += combined[s];
    const auto it = by_domain.find(std::string(delta_->source_domain(s)));
    if (it != by_domain.end()) {
      EXPECT_EQ(combined[s], it->second) << delta_->source_domain(s);
    } else {
      EXPECT_EQ(combined[s], 0u) << delta_->source_domain(s);
    }
  }
  EXPECT_EQ(combined_total, full->num_mentions());
}

TEST_F(StreamTest, GenerationReflectsIngests) {
  // The fixture streamed at least one chunk pair.
  EXPECT_GT(delta_->Generation(), 0u);
}

TEST_F(StreamTest, AcquiredSnapshotAgreesWithForwardingAccessors) {
  // The store's convenience accessors are one-liners over Acquire();
  // with no concurrent ingest the two views must be identical.
  const auto snap = delta_->Acquire();
  EXPECT_EQ(snap->generation(), delta_->Generation());
  EXPECT_EQ(snap->delta_events(), delta_->delta_events());
  EXPECT_EQ(snap->delta_mentions(), delta_->delta_mentions());
  EXPECT_EQ(snap->num_sources(), delta_->num_sources());
  EXPECT_EQ(snap->CombinedMentionCount(), delta_->CombinedMentionCount());
  EXPECT_EQ(snap->CombinedArticlesPerSource(),
            delta_->CombinedArticlesPerSource());
  EXPECT_EQ(snap->CombinedTopSources(5), delta_->CombinedTopSources(5));
  for (std::uint32_t s = 0; s < snap->num_sources(); ++s) {
    EXPECT_EQ(std::string(snap->source_domain(s)), delta_->source_domain(s));
  }
}

TEST(DeltaStoreGenerationTest, BumpedOnEverySuccessfulIngest) {
  DeltaStore delta(nullptr);
  EXPECT_EQ(delta.Generation(), 0u);

  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  std::string mentions_csv;
  gen::AppendEventRow(events_csv, dataset.world, dataset.events[0]);
  gen::AppendMentionRow(mentions_csv, dataset.world, dataset.mentions[0]);

  ASSERT_TRUE(delta.IngestEventsCsv(events_csv).ok());
  const std::uint64_t after_events = delta.Generation();
  EXPECT_GT(after_events, 0u);
  ASSERT_TRUE(delta.IngestMentionsCsv(mentions_csv).ok());
  const std::uint64_t after_mentions = delta.Generation();
  EXPECT_GT(after_mentions, after_events);

  // A failed ingest leaves the generation unchanged.
  EXPECT_FALSE(delta.IngestArchivePair("/no/such.zip", "").ok());
  EXPECT_EQ(delta.Generation(), after_mentions);
}

TEST(DeltaStoreColdStartTest, IngestWithoutBase) {
  DeltaStore delta(nullptr);
  // Hand-written rows in wire format.
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  std::string mentions_csv;
  for (std::size_t i = 0; i < 10 && i < dataset.events.size(); ++i) {
    gen::AppendEventRow(events_csv, dataset.world, dataset.events[i]);
  }
  for (std::size_t i = 0; i < 50 && i < dataset.mentions.size(); ++i) {
    gen::AppendMentionRow(mentions_csv, dataset.world, dataset.mentions[i]);
  }
  ASSERT_TRUE(delta.IngestEventsCsv(events_csv).ok());
  ASSERT_TRUE(delta.IngestMentionsCsv(mentions_csv).ok());
  EXPECT_EQ(delta.delta_events(), 10u);
  EXPECT_EQ(delta.delta_mentions(), 50u);
  EXPECT_GT(delta.num_sources(), 0u);
  EXPECT_EQ(delta.CombinedMentionCount(), 50u);
}

TEST(DeltaStoreConcurrencyTest, SourceDomainStaysValidDuringIngest) {
  // Regression: source_domain used to return a string_view into
  // new_sources_. Domains short enough for SSO live inside the vector's
  // element storage, so every reallocation during a concurrent ingest
  // moved them and the view dangled (use-after-free under ASan). The
  // by-value API must keep answering correctly while the ingester grows
  // new_sources_ far past its initial capacity.
  DeltaStore delta(nullptr);
  const auto mention_row = [](std::uint64_t gid, const std::string& domain) {
    std::string row = std::to_string(gid);
    row += "\t\t20240101000000\t1\t";
    row += domain;
    row.append(11, '\t');
    row += '\n';
    return row;
  };
  std::string seed;
  for (int i = 0; i < 4; ++i) {
    seed += mention_row(1000 + i, "s" + std::to_string(i) + ".com");
  }
  ASSERT_TRUE(delta.IngestMentionsCsv(seed).ok());
  ASSERT_EQ(delta.num_sources(), 4u);

  constexpr int kBatches = 64;
  constexpr int kPerBatch = 32;
  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    for (int batch = 0; batch < kBatches; ++batch) {
      std::string csv;
      for (int i = 0; i < kPerBatch; ++i) {
        const int n = batch * kPerBatch + i;
        csv += mention_row(2000 + n, "g" + std::to_string(n) + ".net");
      }
      EXPECT_TRUE(delta.IngestMentionsCsv(csv).ok());
    }
    stop.store(true, std::memory_order_release);
  });
  // At least one full pass even if the ingester wins the race outright
  // (snapshot publication made ticks fast enough for that to happen on
  // an unloaded box).
  std::uint64_t reads = 0;
  while (!stop.load(std::memory_order_acquire) || reads == 0) {
    for (std::uint32_t id = 0; id < 4; ++id) {
      EXPECT_EQ(delta.source_domain(id),
                "s" + std::to_string(id) + ".com");
      ++reads;
    }
  }
  ingester.join();
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(delta.num_sources(), 4u + kBatches * kPerBatch);
  // One bump per successful ingest call, applied inside the critical
  // section (seed + every batch).
  EXPECT_EQ(delta.Generation(), 1u + kBatches);
}

TEST(DeltaStoreErrorsTest, MalformedRowsAreCounted) {
  DeltaStore delta(nullptr);
  ASSERT_TRUE(delta.IngestMentionsCsv("way\ttoo\tfew\tfields\n").ok());
  EXPECT_EQ(delta.malformed_rows(), 1u);
  ASSERT_TRUE(delta
                  .IngestEventsCsv("not-a-valid-event-row\n")
                  .ok());
  EXPECT_EQ(delta.malformed_rows(), 2u);
}

TEST(DeltaStoreErrorsTest, MissingArchiveFails) {
  DeltaStore delta(nullptr);
  EXPECT_FALSE(delta.IngestArchivePair("/no/such.zip", "").ok());
}

TEST(DeltaStoreErrorsTest, TruncatedMentionsArchiveLeavesStoreUntouched) {
  TempDir dir("truncpair");
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  std::string mentions_csv;
  for (std::size_t i = 0; i < 5; ++i) {
    gen::AppendEventRow(events_csv, dataset.world, dataset.events[i]);
    gen::AppendMentionRow(mentions_csv, dataset.world, dataset.mentions[i]);
  }
  const auto write_zip = [&dir](const std::string& name,
                                const std::string& csv) {
    ZipWriter zip;
    ASSERT_TRUE(zip.Open(dir.path() + "/" + name).ok());
    ASSERT_TRUE(zip.AddEntry(name + ".CSV", csv).ok());
    ASSERT_TRUE(zip.Finish().ok());
  };
  write_zip("chunk.export.CSV.zip", events_csv);
  write_zip("chunk.mentions.CSV.zip", mentions_csv);
  // Tear the mentions archive in half — a crashed mirror sync.
  const std::string mentions_path = dir.path() + "/chunk.mentions.CSV.zip";
  auto bytes = ReadWholeFile(mentions_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteWholeFile(mentions_path, bytes->substr(0, bytes->size() / 2))
          .ok());

  DeltaStore delta(nullptr);
  convert::FetchPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_initial_ms = 0;
  delta.set_fetch_policy(policy);
  // All-or-nothing: even though the export side is intact, the bad
  // mentions side must keep the whole pair out of the store.
  EXPECT_FALSE(delta
                   .IngestArchivePair(dir.path() + "/chunk.export.CSV.zip",
                                      mentions_path)
                   .ok());
  EXPECT_EQ(delta.delta_events(), 0u);
  EXPECT_EQ(delta.delta_mentions(), 0u);
  EXPECT_EQ(delta.Generation(), 0u);
  EXPECT_GE(delta.fetch_stats().failures, 1u);
}

}  // namespace
}  // namespace gdelt::stream
