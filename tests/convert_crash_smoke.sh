#!/bin/sh
# Crash-safety smoke test of the converter: kill -9 the process mid-run
# (via deterministic fault injection), resume with --resume, and demand
# byte-identical output versus an uninterrupted conversion.
set -e
BIN_DIR="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BIN_DIR/gdelt_generate" --preset tiny --seed 11 --out "$WORK/raw" \
    > "$WORK/gen.log" 2>&1

# Uninterrupted reference conversion.
"$BIN_DIR/gdelt_convert" --in "$WORK/raw" --out "$WORK/ref" \
    > "$WORK/ref.log" 2>&1

# Crash run: _Exit(137) at the 30th file open, modeling kill -9 with no
# flushing or cleanup. The journal and settled spills must survive.
set +e
GDELT_FAULT=kill@30 "$BIN_DIR/gdelt_convert" \
    --in "$WORK/raw" --out "$WORK/db" > "$WORK/crash.log" 2>&1
code=$?
set -e
if [ "$code" -ne 137 ]; then
  echo "expected fault-injected kill (exit 137), got $code" >&2
  cat "$WORK/crash.log" >&2
  exit 1
fi
test -f "$WORK/db/convert.journal"

# Resume and compare: the journaled work is skipped, the output matches
# the uninterrupted run byte for byte.
"$BIN_DIR/gdelt_convert" --resume --in "$WORK/raw" --out "$WORK/db" \
    > "$WORK/resume.log" 2>&1
grep -q "resumed" "$WORK/resume.log"
test ! -f "$WORK/db/convert.journal"

for f in events.tbl mentions.tbl sources.dict; do
  if ! cmp -s "$WORK/ref/$f" "$WORK/db/$f"; then
    echo "$f differs between crashed+resumed and reference runs" >&2
    exit 1
  fi
done
echo "convert crash smoke OK"
