#include "engine/sharded.hpp"

#include <gtest/gtest.h>

#include "convert/converter.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace gdelt::engine {
namespace {

using ::gdelt::testing::TempDir;

class ShardedTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    dirs_ = new TempDir("sharded");
    auto cfg = gen::GeneratorConfig::Tiny();
    cfg.defect_missing_archives = 0;
    const auto dataset = gen::GenerateDataset(cfg);
    ASSERT_TRUE(gen::EmitDataset(dataset, cfg, dirs_->path() + "/raw").ok());
    convert::ConvertOptions options;
    options.input_dir = dirs_->path() + "/raw";
    options.output_dir = dirs_->path() + "/db";
    ASSERT_TRUE(convert::ConvertDataset(options).ok());
    auto db = Database::Load(dirs_->path() + "/db");
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dirs_;
  }

  static inline TempDir* dirs_ = nullptr;
  static inline Database* db_ = nullptr;
};

TEST_P(ShardedTest, ShardsPartitionMentions) {
  const std::size_t k = GetParam();
  const auto shards = MakeTimeShards(*db_, k);
  ASSERT_FALSE(shards.empty());
  EXPECT_EQ(shards.front().begin, 0u);
  EXPECT_EQ(shards.back().end, db_->num_mentions());
  for (std::size_t s = 1; s < shards.size(); ++s) {
    EXPECT_EQ(shards[s].begin, shards[s - 1].end);
  }
}

TEST_P(ShardedTest, CrossReportingEqualsSingleNode) {
  const auto single = CountryCrossReporting(*db_);
  const auto sharded = ShardedCountryCrossReporting(*db_, GetParam());
  EXPECT_EQ(sharded.counts, single.counts);
  EXPECT_EQ(sharded.articles_per_publisher, single.articles_per_publisher);
}

TEST_P(ShardedTest, ArticlesPerSourceEqualsSingleNode) {
  const auto single = ArticlesPerSource(*db_);
  const auto sharded = ShardedArticlesPerSource(*db_, GetParam());
  EXPECT_EQ(sharded, single);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedTest,
                         ::testing::Values(1, 2, 3, 8, 64));

TEST(ShardedEdgeTest, MoreShardsThanRows) {
  TempDir dir("shardedge");
  testing::TestDbBuilder builder;
  const auto e = builder.AddEvent(100, country::kUSA);
  builder.AddMention(e, 101, "x.com");
  builder.AddMention(e, 102, "y.co.uk");
  auto db = builder.Build(dir.path());
  ASSERT_TRUE(db.ok());
  const auto single = CountryCrossReporting(*db);
  const auto sharded = ShardedCountryCrossReporting(*db, 16);
  EXPECT_EQ(sharded.counts, single.counts);
}

}  // namespace
}  // namespace gdelt::engine
