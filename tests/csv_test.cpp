#include "csv/tsv.hpp"

#include <gtest/gtest.h>

namespace gdelt {
namespace {

TEST(LineIteratorTest, UnixAndWindowsEndings) {
  LineIterator it("a\nb\r\nc");
  std::string_view line;
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "b");
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "c");
  EXPECT_FALSE(it.Next(line));
}

TEST(LineIteratorTest, EmptyLinesAndTrailingNewline) {
  LineIterator it("\n\nx\n");
  std::string_view line;
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(it.Next(line));
  EXPECT_EQ(line, "x");
  EXPECT_FALSE(it.Next(line));
}

TEST(LineIteratorTest, EmptyBuffer) {
  LineIterator it("");
  std::string_view line;
  EXPECT_FALSE(it.Next(line));
}

TEST(RowReaderTest, ReadsWellFormedRows) {
  RowReader rows("1\t2\t3\n4\t5\t6\n", 3);
  const std::vector<std::string_view>* fields = nullptr;
  ASSERT_TRUE(rows.Next(fields));
  EXPECT_EQ((*fields)[0], "1");
  EXPECT_EQ((*fields)[2], "3");
  ASSERT_TRUE(rows.Next(fields));
  EXPECT_EQ((*fields)[1], "5");
  EXPECT_FALSE(rows.Next(fields));
  EXPECT_EQ(rows.rows_read(), 2u);
  EXPECT_TRUE(rows.errors().empty());
}

TEST(RowReaderTest, CollectsMalformedRows) {
  RowReader rows("a\tb\nonly-one\nc\td\ntoo\tmany\tfields\n", 2);
  const std::vector<std::string_view>* fields = nullptr;
  int good = 0;
  while (rows.Next(fields)) ++good;
  EXPECT_EQ(good, 2);
  ASSERT_EQ(rows.errors().size(), 2u);
  EXPECT_EQ(rows.errors()[0].line_number, 2u);
  EXPECT_EQ(rows.errors()[1].line_number, 4u);
  EXPECT_NE(rows.errors()[0].message.find("expected 2"), std::string::npos);
}

TEST(RowReaderTest, SkipsBlankLines) {
  RowReader rows("\n1\t2\n\n3\t4\n", 2);
  const std::vector<std::string_view>* fields = nullptr;
  int good = 0;
  while (rows.Next(fields)) ++good;
  EXPECT_EQ(good, 2);
  EXPECT_TRUE(rows.errors().empty());
}

TEST(RowReaderTest, EmptyFieldsPreserved) {
  RowReader rows("\t\t\n", 3);
  const std::vector<std::string_view>* fields = nullptr;
  ASSERT_TRUE(rows.Next(fields));
  EXPECT_EQ((*fields)[0], "");
  EXPECT_EQ((*fields)[1], "");
  EXPECT_EQ((*fields)[2], "");
}

TEST(AppendTsvRowTest, RoundTripsThroughReader) {
  std::string buf;
  AppendTsvRow(buf, {"x", "", "z"});
  AppendTsvRow(buf, {"1", "2", "3"});
  RowReader rows(buf, 3);
  const std::vector<std::string_view>* fields = nullptr;
  ASSERT_TRUE(rows.Next(fields));
  EXPECT_EQ((*fields)[1], "");
  ASSERT_TRUE(rows.Next(fields));
  EXPECT_EQ((*fields)[2], "3");
  EXPECT_FALSE(rows.Next(fields));
}

}  // namespace
}  // namespace gdelt
