#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/sort.hpp"
#include "util/rng.hpp"

namespace gdelt {
namespace {

TEST(SplitRangeTest, CoversExactlyOnce) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 100ul, 1000ul}) {
    for (const std::size_t parts : {1ul, 2ul, 3ul, 16ul, 1000ul}) {
      const auto ranges = SplitRange(n, parts);
      std::size_t covered = 0;
      std::size_t expected_next = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.begin, expected_next);
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        expected_next = r.end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " parts=" << parts;
      EXPECT_EQ(expected_next, n);
    }
  }
}

TEST(SplitRangeTest, BalancedWithinOne) {
  const auto ranges = SplitRange(103, 10);
  std::size_t min_size = SIZE_MAX;
  std::size_t max_size = 0;
  for (const auto& r : ranges) {
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

class ParallelForTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ParallelForTest, VisitsEachIndexOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(
      n, [&](std::size_t i) { visits[i].fetch_add(1); }, GetParam());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ParallelForTest,
                         ::testing::Values(Schedule::kStatic,
                                           Schedule::kDynamic,
                                           Schedule::kGuided));

TEST(ParallelForChunksTest, ChunksPartitionRange) {
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> visits(n);
  ParallelForChunks(n, [&](IndexRange r, int tid) {
    EXPECT_GE(tid, 0);
    for (std::size_t i = r.begin; i < r.end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelReduceTest, MatchesSerialSum) {
  const std::size_t n = 100000;
  std::vector<std::uint64_t> data(n);
  Xoshiro256 rng(3);
  for (auto& d : data) d = UniformBelow(rng, 1000);
  const std::uint64_t serial = std::accumulate(data.begin(), data.end(), 0ull);
  const std::uint64_t parallel = ParallelSum<std::uint64_t>(
      n, [&](std::size_t i) { return data[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduceTest, MinMax) {
  const std::size_t n = 50000;
  std::vector<std::int64_t> data(n);
  Xoshiro256 rng(5);
  for (auto& d : data) d = UniformInt(rng, -1000000, 1000000);
  const auto mn = ParallelReduce<std::int64_t>(
      n, INT64_MAX, [&](std::size_t i) { return data[i]; },
      [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
  const auto mx = ParallelReduce<std::int64_t>(
      n, INT64_MIN, [&](std::size_t i) { return data[i]; },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(mn, *std::min_element(data.begin(), data.end()));
  EXPECT_EQ(mx, *std::max_element(data.begin(), data.end()));
}

TEST(ParallelHistogramTest, MatchesSerial) {
  const std::size_t n = 200000;
  const std::size_t bins = 64;
  std::vector<std::size_t> keys(n);
  Xoshiro256 rng(7);
  for (auto& k : keys) k = UniformBelow(rng, bins + 8);  // some out of range
  std::vector<std::uint64_t> serial(bins, 0);
  for (const auto k : keys) {
    if (k < bins) ++serial[k];
  }
  const auto parallel =
      ParallelHistogram(n, bins, [&](std::size_t i) { return keys[i]; });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelHistogramTest, EmptyInput) {
  const auto h = ParallelHistogram(0, 4, [](std::size_t) { return 0u; });
  EXPECT_EQ(h, (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(PrefixSumTest, ExclusiveSemantics) {
  std::vector<std::uint64_t> v{3, 0, 2, 5};
  const std::uint64_t total = ExclusivePrefixSum(v);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 3, 5}));
}

TEST(ParallelSortTest, SortsLargeRandom) {
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> v(300000);
  for (auto& x : v) x = rng();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  ParallelSort(v);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSortTest, CustomComparatorDescending) {
  Xoshiro256 rng(13);
  std::vector<int> v(50000);
  for (auto& x : v) x = static_cast<int>(UniformBelow(rng, 1000));
  ParallelSort(v, std::greater<>());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
}

TEST(ParallelSortTest, SmallAndEmpty) {
  std::vector<int> empty;
  ParallelSort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  ParallelSort(one);
  EXPECT_EQ(one, std::vector<int>{5});
  std::vector<int> few{3, 1, 2};
  ParallelSort(few);
  EXPECT_EQ(few, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace gdelt
