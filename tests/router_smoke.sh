#!/bin/sh
# End-to-end smoke test of the router path: generate a mini dataset,
# convert it, start two gdelt_serve shard backends and a gdelt_router in
# front, verify routed answers are byte-identical to a backend's own,
# kill -9 one shard and assert a structured degraded response, restart
# the shard on its original port and assert full recovery.
set -e
BIN_DIR="$1"
WORK="$(mktemp -d)"
S1_PID=""
S2_PID=""
ROUTER_PID=""
cleanup() {
  [ -n "$S1_PID" ] && kill -9 "$S1_PID" 2>/dev/null || true
  [ -n "$S2_PID" ] && kill -9 "$S2_PID" 2>/dev/null || true
  [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# wait_ready <out-file> <pid>: echoes the READY port.
wait_ready() {
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^READY port=\([0-9]*\)$/\1/p' "$1")"
    [ -n "$port" ] && break
    kill -0 "$2" 2>/dev/null || return 1
    sleep 0.1
  done
  [ -n "$port" ] || return 1
  echo "$port"
}

"$BIN_DIR/gdelt_generate" --preset tiny --seed 7 --out "$WORK/raw" \
    > "$WORK/gen.log" 2>&1
"$BIN_DIR/gdelt_convert" --in "$WORK/raw" --out "$WORK/db" \
    > "$WORK/conv.log" 2>&1

# Both shard backends serve the full converted database; the router
# assigns each one a partition of every decomposable query.
"$BIN_DIR/gdelt_serve" --db "$WORK/db" --port 0 --workers 2 \
    > "$WORK/s1.out" 2> "$WORK/s1.log" &
S1_PID=$!
"$BIN_DIR/gdelt_serve" --db "$WORK/db" --port 0 --workers 2 \
    > "$WORK/s2.out" 2> "$WORK/s2.log" &
S2_PID=$!
P1="$(wait_ready "$WORK/s1.out" "$S1_PID")" \
    || { cat "$WORK/s1.log" >&2; exit 1; }
P2="$(wait_ready "$WORK/s2.out" "$S2_PID")" \
    || { cat "$WORK/s2.log" >&2; exit 1; }

"$BIN_DIR/gdelt_router" --shards "127.0.0.1:$P1;127.0.0.1:$P2" --port 0 \
    --connect-timeout-ms 500 --scatter-passes 1 --down-after 1 \
    --health-interval-ms 200 \
    > "$WORK/router.out" 2> "$WORK/router.log" &
ROUTER_PID=$!
RPORT="$(wait_ready "$WORK/router.out" "$ROUTER_PID")" \
    || { cat "$WORK/router.log" >&2; exit 1; }

# Every query kind through the router: all ok, none degraded.
for q in stats top-sources top-events quarterly coreport follow \
         country-coreport cross-report delay tone first-reports; do
  printf '{"id":"%s","query":"%s","top":5}\n' "$q" "$q"
done | "$BIN_DIR/gdelt_client" --port "$RPORT" > "$WORK/routed.out"
test "$(wc -l < "$WORK/routed.out")" -eq 11
! grep -q '"ok":false' "$WORK/routed.out"
! grep -q 'partial_failure' "$WORK/routed.out"

# Byte-identity: a scattered kind's text equals the same query answered
# by one backend directly (wall_ms differs; compare the text member).
extract_text() {
  sed 's/.*"text":/"text":/' "$1"
}
printf '{"query":"coreport","top":5}\n' \
    | "$BIN_DIR/gdelt_client" --port "$RPORT" > "$WORK/via_router.out"
printf '{"query":"coreport","top":5}\n' \
    | "$BIN_DIR/gdelt_client" --port "$P1" > "$WORK/via_shard.out"
test "$(extract_text "$WORK/via_router.out")" = \
     "$(extract_text "$WORK/via_shard.out")"

# The router's own surface: ping and per-endpoint health.
printf '{"query":"ping"}\n{"query":"metrics"}\n' \
    | "$BIN_DIR/gdelt_client" --port "$RPORT" > "$WORK/meta.out"
grep -q '"pong":true' "$WORK/meta.out"
grep -q '"num_shards":2' "$WORK/meta.out"

# Shard death: kill -9 shard 2 and expect a degraded (ok:true +
# partial_failure naming shard 1) answer for a scattered kind.
kill -9 "$S2_PID"
wait "$S2_PID" 2>/dev/null || true
S2_PID=""
printf '{"id":"deg","query":"coreport","top":5}\n' \
    | "$BIN_DIR/gdelt_client" --port "$RPORT" > "$WORK/degraded.out"
grep -q '"ok":true' "$WORK/degraded.out"
grep -q '"partial_failure":\[1\]' "$WORK/degraded.out"

# Restart the shard on its original port; the health probe revives it
# and the same query comes back complete and byte-identical again.
"$BIN_DIR/gdelt_serve" --db "$WORK/db" --port "$P2" --workers 2 \
    > "$WORK/s2b.out" 2> "$WORK/s2b.log" &
S2_PID=$!
wait_ready "$WORK/s2b.out" "$S2_PID" > /dev/null \
    || { cat "$WORK/s2b.log" >&2; exit 1; }
recovered=0
for _ in $(seq 1 50); do
  printf '{"id":"rec","query":"coreport","top":5}\n' \
      | "$BIN_DIR/gdelt_client" --port "$RPORT" > "$WORK/recovered.out"
  if grep -q '"ok":true' "$WORK/recovered.out" \
     && ! grep -q 'partial_failure' "$WORK/recovered.out"; then
    recovered=1
    break
  fi
  sleep 0.2
done
test "$recovered" -eq 1 || { cat "$WORK/recovered.out" >&2; exit 1; }
test "$(extract_text "$WORK/recovered.out")" = \
     "$(extract_text "$WORK/via_shard.out")"

# Graceful SIGTERM: the router drains and exits zero.
kill -TERM "$ROUTER_PID"
i=0
while kill -0 "$ROUTER_PID" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "router ignored SIGTERM" >&2; exit 1; }
  sleep 0.1
done
wait "$ROUTER_PID"
ROUTER_PID=""
grep -q "drained" "$WORK/router.log"
echo "router smoke OK"
