// Property-style parameterized sweeps across modules: serialization
// round-trips over all column types and sizes, ZIP payload sweeps,
// calendar monotonicity, and generator invariants across presets/seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "columnar/table.hpp"
#include "gen/generator.hpp"
#include "gtime/timestamp.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace gdelt {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// Table round-trip over (column type, row count).

class TableRoundTripTest
    : public ::testing::TestWithParam<std::tuple<ColumnType, std::size_t>> {};

void FillColumn(Column& col, std::size_t rows, Xoshiro256& rng) {
  for (std::size_t i = 0; i < rows; ++i) {
    switch (col.type()) {
      case ColumnType::kU8:
        col.Append<std::uint8_t>(static_cast<std::uint8_t>(rng()));
        break;
      case ColumnType::kU16:
        col.Append<std::uint16_t>(static_cast<std::uint16_t>(rng()));
        break;
      case ColumnType::kU32:
        col.Append<std::uint32_t>(static_cast<std::uint32_t>(rng()));
        break;
      case ColumnType::kU64:
        col.Append<std::uint64_t>(rng());
        break;
      case ColumnType::kI64:
        col.Append<std::int64_t>(static_cast<std::int64_t>(rng()));
        break;
      case ColumnType::kF64:
        col.Append<double>(UniformDouble(rng) * 1e6 - 5e5);
        break;
      case ColumnType::kStr: {
        const std::size_t len = UniformBelow(rng, 40);
        std::string s;
        for (std::size_t k = 0; k < len; ++k) {
          s += static_cast<char>('a' + UniformBelow(rng, 26));
        }
        col.AppendString(s);
        break;
      }
    }
  }
}

bool ColumnsEqual(const Column& a, const Column& b) {
  if (a.type() != b.type() || a.size() != b.size()) return false;
  if (a.type() == ColumnType::kStr) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.StringAt(i) != b.StringAt(i)) return false;
    }
    return true;
  }
  return a.raw_bytes() == b.raw_bytes();
}

TEST_P(TableRoundTripTest, WriteReadPreservesEverything) {
  const auto [type, rows] = GetParam();
  TempDir dir("proproundtrip");
  Xoshiro256 rng(static_cast<std::uint64_t>(rows) * 31 +
                 static_cast<std::uint64_t>(type));
  Table table;
  FillColumn(table.AddColumn("data", type), rows, rng);
  FillColumn(table.AddColumn("extra", ColumnType::kU32), rows, rng);
  const std::string path = dir.path() + "/t.tbl";
  ASSERT_TRUE(table.WriteToFile(path).ok());
  auto loaded = Table::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(ColumnsEqual(table.GetColumn("data"),
                           loaded->GetColumn("data")));
  EXPECT_TRUE(ColumnsEqual(table.GetColumn("extra"),
                           loaded->GetColumn("extra")));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSizes, TableRoundTripTest,
    ::testing::Combine(::testing::Values(ColumnType::kU8, ColumnType::kU16,
                                         ColumnType::kU32, ColumnType::kU64,
                                         ColumnType::kI64, ColumnType::kF64,
                                         ColumnType::kStr),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{257},
                                         std::size_t{10000})));

// ---------------------------------------------------------------------------
// ZIP round-trip over payload sizes.

class ZipSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZipSizeTest, RoundTripsPayload) {
  const std::size_t size = GetParam();
  TempDir dir("propzip");
  Xoshiro256 rng(size + 1);
  std::string payload(size, '\0');
  for (auto& c : payload) c = static_cast<char>(rng());
  const std::string path = dir.path() + "/p.zip";
  ZipWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.AddEntry("payload.bin", payload).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto bytes = ReadWholeFile(path);
  ASSERT_TRUE(bytes.ok());
  auto reader = ZipReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  auto out = reader->ReadEntry("payload.bin");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipSizeTest,
                         ::testing::Values(0, 1, 100, 4096, 1 << 17));

// ---------------------------------------------------------------------------
// Calendar properties over random timestamps.

TEST(CalendarPropertyTest, QuarterIsMonotoneInTime) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::int64_t a =
        1420070400 + static_cast<std::int64_t>(UniformBelow(rng, 157000000));
    const std::int64_t b =
        1420070400 + static_cast<std::int64_t>(UniformBelow(rng, 157000000));
    const std::int64_t lo = std::min(a, b);
    const std::int64_t hi = std::max(a, b);
    EXPECT_LE(QuarterOfUnixSeconds(lo), QuarterOfUnixSeconds(hi));
    EXPECT_LE(IntervalOfUnixSeconds(lo), IntervalOfUnixSeconds(hi));
  }
}

TEST(CalendarPropertyTest, TimestampFormatParseInverse) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::int64_t t =
        1420070400 + static_cast<std::int64_t>(UniformBelow(rng, 157000000));
    const CivilDateTime civil = FromUnixSeconds(t);
    const auto reparsed = ParseGdeltTimestamp(FormatGdeltTimestamp(civil));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value(), civil);
    EXPECT_EQ(ToGdeltTimestamp(reparsed.value()), ToGdeltTimestamp(civil));
  }
}

TEST(CalendarPropertyTest, IntervalOfItsOwnStartIsIdentity) {
  Xoshiro256 rng(103);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto id = static_cast<IntervalId>(UniformBelow(rng, 3000000));
    EXPECT_EQ(IntervalOfCivil(IntervalStartCivil(id)), id);
  }
}

// ---------------------------------------------------------------------------
// Generator invariants across seeds.

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedTest, InvariantsHold) {
  auto cfg = gen::GeneratorConfig::Tiny();
  cfg.seed = GetParam();
  const gen::RawDataset ds = gen::GenerateDataset(cfg);
  ASSERT_GT(ds.events.size(), 0u);
  ASSERT_GT(ds.mentions.size(), 0u);
  // Volume conservation.
  std::uint64_t article_sum = 0;
  for (const auto& ev : ds.events) {
    EXPECT_GE(ev.num_articles, 1u);
    article_sum += ev.num_articles;
  }
  EXPECT_EQ(article_sum, ds.mentions.size());
  // Sortedness and window containment.
  EXPECT_TRUE(std::is_sorted(
      ds.mentions.begin(), ds.mentions.end(),
      [](const gen::MentionRecord& a, const gen::MentionRecord& b) {
        return a.mention_interval < b.mention_interval;
      }));
  for (const auto& m : ds.mentions) {
    EXPECT_GE(m.mention_interval, ds.first_interval);
    EXPECT_LT(m.mention_interval, ds.end_interval);
    EXPECT_LT(m.source_index, ds.world.sources.size());
  }
  // Event ids unique.
  std::vector<std::uint64_t> ids;
  ids.reserve(ds.events.size());
  for (const auto& ev : ds.events) ids.push_back(ev.global_event_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 42, 777, 123456789));

}  // namespace
}  // namespace gdelt
