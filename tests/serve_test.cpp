// Tests for the query service: wire JSON, strict request parsing, the
// epoch-keyed result cache, the admission-controlled server over real
// loopback sockets, and graceful drain.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/database.hpp"
#include "gen/generator.hpp"
#include "gen/emit.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "stream/delta_store.hpp"
#include "test_util.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ParsesFlatObject) {
  const auto v = JsonValue::Parse(
      R"({"query":"stats","top":5,"deep":false,"note":null,"xs":[1,2]})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("query")->AsString(), "stats");
  EXPECT_EQ(v->Find("top")->AsInt(), 5);
  EXPECT_FALSE(v->Find("deep")->AsBool(true));
  EXPECT_EQ(v->Find("note")->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("xs")->elements().size(), 2u);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, ParsesEscapes) {
  const auto v = JsonValue::Parse(R"({"s":"a\"b\\c\nd"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("s")->AsString(), "a\"b\\c\nd");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a":"unterminated)").ok());
  EXPECT_FALSE(JsonValue::Parse("{'single':1}").ok());
  // Depth bomb stops at the parser's limit instead of recursing away.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, EscapesOnOutput) {
  std::string out;
  AppendJsonString(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// ------------------------------------------------------------ protocol --

TEST(ProtocolTest, ParsesDefaults) {
  const auto r = ParseRequest(R"({"query":"stats"})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, "stats");
  EXPECT_EQ(r->top_k, 10u);
  EXPECT_FALSE(r->restricted);
  EXPECT_TRUE(r->IsQuery());
}

TEST(ProtocolTest, ParsesFilterOptions) {
  const auto r = ParseRequest(
      R"({"query":"top-sources","top":3,"from":"20150225000000",)"
      R"("min_confidence":50})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->top_k, 3u);
  EXPECT_TRUE(r->restricted);
  EXPECT_EQ(r->filter.min_confidence, 50);
  EXPECT_GT(r->filter.begin_interval, 0);
}

TEST(ProtocolTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"([1,2,3])").ok());
  EXPECT_FALSE(ParseRequest(R"({"top":5})").ok());          // no query
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","bogus":1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","top":-1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","top":"5"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","from":"noon"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"ingest"})").ok());  // no paths
}

TEST(ProtocolTest, CanonicalKeyIgnoresSpelling) {
  const auto a = ParseRequest(R"({"query":"stats","top":10})");
  const auto b = ParseRequest(R"({ "top": 10, "query": "stats" })");
  const auto c = ParseRequest(R"({"query":"stats","top":9})");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(CanonicalKey(*a), CanonicalKey(*b));
  EXPECT_NE(CanonicalKey(*a), CanonicalKey(*c));
}

// --------------------------------------------------------------- cache --

TEST(ResultCacheTest, LruEvictionAndEpochInvalidation) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.Get("a", 1).has_value());
  cache.Put("a", 1, "A");
  cache.Put("b", 1, "B");
  EXPECT_EQ(cache.Get("a", 1).value(), "A");  // a is now most recent
  cache.Put("c", 1, "C");                     // evicts b
  EXPECT_FALSE(cache.Get("b", 1).has_value());
  EXPECT_EQ(cache.Get("a", 1).value(), "A");
  // Same key, newer epoch: the stale entry is dropped.
  EXPECT_FALSE(cache.Get("a", 2).has_value());
  EXPECT_EQ(cache.entries(), 1u);  // only c remains
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

// -------------------------------------------------------------- server --

/// Spins up a server over a small hand-built database on an ephemeral
/// loopback port.
class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options, stream::DeltaStore* delta = nullptr) {
    dir_ = std::make_unique<TempDir>("serve");
    TestDbBuilder builder;
    const auto e1 = builder.AddEvent(100, CountryId{1});
    const auto e2 = builder.AddEvent(200, CountryId{2});
    const auto e3 = builder.AddEvent(300);
    builder.AddMention(e1, 101, "a.com", 90);
    builder.AddMention(e1, 102, "b.com", 40);
    builder.AddMention(e2, 201, "a.com", 80);
    builder.AddMention(e2, 202, "c.com", 70);
    builder.AddMention(e3, 301, "b.com", 30);
    builder.AddMention(e3, 302, "a.com", 95);
    auto db = builder.Build(dir_->path());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<engine::Database>(std::move(*db));
    server_ = std::make_unique<Server>(*db_, delta, options);
    const auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  LineClient Connect() {
    auto client = LineClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static JsonValue Parsed(const std::string& line) {
    auto v = JsonValue::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    return v.ok() ? std::move(*v) : JsonValue();
  }

  static std::string ErrorCodeOf(const JsonValue& response) {
    const auto* error = response.Find("error");
    if (error == nullptr || error->Find("code") == nullptr) return "";
    return error->Find("code")->AsString();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, AnswersAllQueryKindsIdenticallyToRenderer) {
  StartServer(ServerOptions{});
  auto client = Connect();
  for (const char* kind :
       {"stats", "top-sources", "top-events", "quarterly", "coreport",
        "follow", "country-coreport", "cross-report", "delay", "tone",
        "first-reports"}) {
    const auto response = client.RoundTrip(
        std::string(R"({"id":"t","query":")") + kind + R"(","top":3})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const auto v = Parsed(*response);
    ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
    EXPECT_EQ(v.Find("id")->AsString(), "t");
    EXPECT_EQ(v.Find("query")->AsString(), kind);

    // The acceptance bar: server text == what the CLI renders.
    Request request;
    request.kind = kind;
    request.top_k = 3;
    const auto rendered = RenderQuery(*db_, request);
    ASSERT_TRUE(rendered.ok());
    EXPECT_EQ(v.Find("text")->AsString(), rendered->text) << kind;
  }
}

TEST_F(ServeTest, FilteredQueryMatchesRenderer) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string line =
      R"({"query":"top-sources","top":2,"min_confidence":60})";
  const auto response = client.RoundTrip(line);
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  const auto request = ParseRequest(line);
  ASSERT_TRUE(request.ok());
  const auto rendered = RenderQuery(*db_, *request);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(v.Find("text")->AsString(), rendered->text);
  EXPECT_NE(rendered->text.find("restricted"), std::string::npos);
}

TEST_F(ServeTest, SecondRequestIsServedFromCache) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string line = R"({"query":"top-sources","top":2})";
  const auto first = client.RoundTrip(line);
  ASSERT_TRUE(first.ok());
  const auto v1 = Parsed(*first);
  ASSERT_TRUE(v1.Find("ok")->AsBool());
  EXPECT_FALSE(v1.Find("cached")->AsBool(true));

  // Different spelling, same canonical request -> same entry.
  const auto second =
      client.RoundTrip(R"({ "top": 2, "query": "top-sources" })");
  ASSERT_TRUE(second.ok());
  const auto v2 = Parsed(*second);
  ASSERT_TRUE(v2.Find("ok")->AsBool());
  EXPECT_TRUE(v2.Find("cached")->AsBool(false));
  EXPECT_EQ(v1.Find("text")->AsString(), v2.Find("text")->AsString());

  // The metrics request exposes the hit.
  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  ASSERT_NE(m.Find("metrics"), nullptr);
  EXPECT_GE(m.Find("metrics")->Find("cache_hits")->AsInt(), 1);
  EXPECT_GE(m.Find("metrics")->Find("cache_misses")->AsInt(), 1);
}

TEST_F(ServeTest, IngestBumpsEpochAndInvalidatesCache) {
  stream::DeltaStore delta(nullptr);
  StartServer(ServerOptions{}, &delta);
  auto client = Connect();
  const std::string line = R"({"query":"stats"})";
  ASSERT_TRUE(client.RoundTrip(line).ok());
  const auto cached = client.RoundTrip(line);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(Parsed(*cached).Find("cached")->AsBool(false));

  // New data lands (directly into the delta store): epoch moves on and
  // the same request recomputes.
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  gen::AppendEventRow(events_csv, dataset.world, dataset.events[0]);
  ASSERT_TRUE(delta.IngestEventsCsv(events_csv).ok());

  const auto recomputed = client.RoundTrip(line);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(Parsed(*recomputed).Find("cached")->AsBool(true));
}

TEST_F(ServeTest, MalformedAndUnknownRequestsAreStructuredErrors) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto bad = client.RoundTrip("this is not json");
  ASSERT_TRUE(bad.ok());
  const auto vb = Parsed(*bad);
  EXPECT_FALSE(vb.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(vb), "bad_request");

  const auto unknown = client.RoundTrip(R"({"id":"u","query":"bogus"})");
  ASSERT_TRUE(unknown.ok());
  const auto vu = Parsed(*unknown);
  EXPECT_FALSE(vu.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(vu), "unknown_query");
  EXPECT_EQ(vu.Find("id")->AsString(), "u");

  // The connection survives errors.
  const auto ok = client.RoundTrip(R"({"query":"stats"})");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(Parsed(*ok).Find("ok")->AsBool());
}

TEST_F(ServeTest, RequestPastDeadlineReturnsTimeout) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto response = client.RoundTrip(
      R"({"query":"stats","top":9,"timeout_ms":1,"debug_sleep_ms":100})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "timeout");
}

TEST_F(ServeTest, QueueOverflowReturnsOverloaded) {
  ServerOptions options;
  options.scheduler.workers = 1;
  options.scheduler.threads_per_query = 1;
  options.scheduler.queue_capacity = 1;
  options.cache_entries = 0;  // every request must reach the queue
  StartServer(options);

  // One request occupies the single worker, one fills the queue; the
  // third must be rejected up front.
  auto busy = Connect();
  auto queued = Connect();
  auto rejected = Connect();
  ASSERT_TRUE(
      busy.Send(R"({"id":"busy","query":"stats","debug_sleep_ms":400})")
          .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(
      queued.Send(R"({"id":"queued","query":"stats","debug_sleep_ms":1})")
          .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto response =
      rejected.RoundTrip(R"({"id":"rejected","query":"stats"})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "overloaded");

  const auto busy_response = busy.ReadLine();
  ASSERT_TRUE(busy_response.ok());
  EXPECT_TRUE(Parsed(*busy_response).Find("ok")->AsBool());
  const auto queued_response = queued.ReadLine();
  ASSERT_TRUE(queued_response.ok());
  EXPECT_TRUE(Parsed(*queued_response).Find("ok")->AsBool());
}

TEST_F(ServeTest, StopDrainsInFlightRequests) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(
      client.Send(R"({"query":"stats","top":8,"debug_sleep_ms":200})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([this] { server_->Stop(); });
  const auto response = client.ReadLine();
  stopper.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(Parsed(*response).Find("ok")->AsBool()) << *response;
  // After the drain, new requests are refused.
  EXPECT_NE(server_->HandleLine(R"({"query":"stats"})")
                .find("shutting_down"),
            std::string::npos);
}

TEST_F(ServeTest, PingAndConcurrentClients) {
  ServerOptions options;
  options.scheduler.workers = 4;
  options.scheduler.threads_per_query = 1;
  StartServer(options);
  const auto ping = Connect().RoundTrip(R"({"query":"ping"})");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(Parsed(*ping).Find("pong")->AsBool());

  // Hammer from several threads; every response must be well-formed and ok.
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, t, &failures] {
      auto client = Connect();
      for (int i = 0; i < 20; ++i) {
        const auto response = client.RoundTrip(
            StrFormat(R"({"query":"top-sources","top":%d})", 1 + (i % 3)));
        if (!response.ok()) {
          ++failures[t];
          continue;
        }
        const auto v = JsonValue::Parse(*response);
        if (!v.ok() || !v->Find("ok")->AsBool()) ++failures[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "client " << t;
}

}  // namespace
}  // namespace gdelt::serve
