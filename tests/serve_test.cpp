// Tests for the query service: wire JSON, strict request parsing, the
// epoch-keyed result cache, the admission-controlled server over real
// loopback sockets, and graceful drain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.hpp"
#include "gen/generator.hpp"
#include "gen/emit.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "serve/prom.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "stream/delta_store.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

using ::gdelt::testing::TempDir;
using ::gdelt::testing::TestDbBuilder;

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ParsesFlatObject) {
  const auto v = JsonValue::Parse(
      R"({"query":"stats","top":5,"deep":false,"note":null,"xs":[1,2]})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("query")->AsString(), "stats");
  EXPECT_EQ(v->Find("top")->AsInt(), 5);
  EXPECT_FALSE(v->Find("deep")->AsBool(true));
  EXPECT_EQ(v->Find("note")->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("xs")->elements().size(), 2u);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, ParsesEscapes) {
  const auto v = JsonValue::Parse(R"({"s":"a\"b\\c\nd"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("s")->AsString(), "a\"b\\c\nd");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a":"unterminated)").ok());
  EXPECT_FALSE(JsonValue::Parse("{'single':1}").ok());
  // Depth bomb stops at the parser's limit instead of recursing away.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, EscapesOnOutput) {
  std::string out;
  AppendJsonString(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// ------------------------------------------------------------ protocol --

TEST(ProtocolTest, ParsesDefaults) {
  const auto r = ParseRequest(R"({"query":"stats"})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, "stats");
  EXPECT_EQ(r->top_k, 10u);
  EXPECT_FALSE(r->restricted);
  EXPECT_TRUE(r->IsQuery());
}

TEST(ProtocolTest, ParsesFilterOptions) {
  const auto r = ParseRequest(
      R"({"query":"top-sources","top":3,"from":"20150225000000",)"
      R"("min_confidence":50})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->top_k, 3u);
  EXPECT_TRUE(r->restricted);
  EXPECT_EQ(r->filter.min_confidence, 50);
  EXPECT_GT(r->filter.begin_interval, 0);
}

TEST(ProtocolTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"([1,2,3])").ok());
  EXPECT_FALSE(ParseRequest(R"({"top":5})").ok());          // no query
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","bogus":1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","top":-1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","top":"5"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","from":"noon"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"query":"ingest"})").ok());  // no paths
}

TEST(ProtocolTest, CanonicalKeyIgnoresSpelling) {
  const auto a = ParseRequest(R"({"query":"stats","top":10})");
  const auto b = ParseRequest(R"({ "top": 10, "query": "stats" })");
  const auto c = ParseRequest(R"({"query":"stats","top":9})");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(CanonicalKey(*a), CanonicalKey(*b));
  EXPECT_NE(CanonicalKey(*a), CanonicalKey(*c));
}

TEST(ProtocolTest, ParsesTraceFlag) {
  const auto r = ParseRequest(R"({"query":"stats","trace":true})");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->trace);
  const auto off = ParseRequest(R"({"query":"stats"})");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->trace);
  EXPECT_FALSE(ParseRequest(R"({"query":"stats","trace":1})").ok());
}

// ----------------------------------------------------- latency histogram --

TEST(LatencyHistogramTest, BucketBoundaries) {
  LatencyHistogram h;
  h.Record(0.0);      // 0 us: bucket 0, not a phantom [1,2) bucket
  h.Record(5e-7);     // 0.5 us -> bucket 0
  h.Record(1e-6);     // 1 us -> bucket 0 ([0,2))
  h.Record(2e-6);     // 2 us: exactly on the edge -> bucket 1 ([2,4))
  h.Record(3e-6);     // -> bucket 1
  h.Record(4e-6);     // 4 us edge -> bucket 2
  h.Record(9.0);      // 9 s >= 2^23 us -> open-ended bucket 23
  h.Record(1000.0);   // far past the top edge still lands in bucket 23
  const auto snap = h.Snap();
  EXPECT_EQ(snap.count, 8u);
  EXPECT_EQ(snap.buckets[0], 3u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kBuckets - 1], 2u);
  std::uint64_t total = 0;
  for (const auto b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
}

TEST(LatencyHistogramTest, QuantileClampsToObservedMax) {
  LatencyHistogram h;
  h.Record(0.010);  // 10 ms -> bucket [8.192, 16.384) ms
  const auto snap = h.Snap();
  // The bucket's upper edge (16.384 ms) overshoots the only sample; every
  // quantile must clamp to the observed max instead.
  EXPECT_DOUBLE_EQ(snap.QuantileMs(0.5), snap.max_ms);
  EXPECT_DOUBLE_EQ(snap.QuantileMs(1.0), snap.max_ms);
  // Open-ended top bucket: without the clamp this would claim 16.7 s.
  LatencyHistogram big;
  big.Record(10.0);
  const auto big_snap = big.Snap();
  EXPECT_DOUBLE_EQ(big_snap.QuantileMs(0.99), big_snap.max_ms);
}

TEST(LatencyHistogramTest, QuantileZeroDoesNotInventLatency) {
  LatencyHistogram h;
  h.Record(1.0);  // one 1 s sample; bucket 0 is empty
  const auto snap = h.Snap();
  // q=0 used to rank 0 samples and report empty bucket 0's edge (2 us).
  EXPECT_GT(snap.QuantileMs(0.0), 100.0);
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.Snap().QuantileMs(0.5), 0.0);
}

TEST(LatencyHistogramTest, QuantilesAreMonotonicInQ) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(1e-5);  // 10 us
  for (int i = 0; i < 10; ++i) h.Record(1e-2);  // 10 ms
  const auto snap = h.Snap();
  EXPECT_LE(snap.QuantileMs(0.5), snap.QuantileMs(0.9));
  EXPECT_LE(snap.QuantileMs(0.9), snap.QuantileMs(0.99));
  EXPECT_LT(snap.QuantileMs(0.5), 1.0);   // p50 is in the 10 us bucket
  EXPECT_GT(snap.QuantileMs(0.99), 1.0);  // p99 reaches the 10 ms bucket
}

// --------------------------------------------------------------- cache --

TEST(ResultCacheTest, LruEvictionAndEpochInvalidation) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.Get("a", 1).has_value());
  cache.Put("a", 1, "A");
  cache.Put("b", 1, "B");
  EXPECT_EQ(cache.Get("a", 1).value(), "A");  // a is now most recent
  cache.Put("c", 1, "C");                     // evicts b
  EXPECT_FALSE(cache.Get("b", 1).has_value());
  EXPECT_EQ(cache.Get("a", 1).value(), "A");
  // Same key, newer epoch: observing epoch 2 sweeps EVERY epoch-1 entry
  // in the shard — none of them can ever be served again, so none of
  // them may keep occupying capacity or counters.
  EXPECT_FALSE(cache.Get("a", 2).has_value());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.evicted_stale(), 2u);  // a and c, collected as stale
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(ResultCacheTest, StalePutDoesNotClobberNewerEpoch) {
  ResultCache cache(2);
  EXPECT_TRUE(cache.Put("k", 2, "fresh"));
  // A slow render keyed to the pre-ingest epoch finishes late: it must
  // not evict the post-ingest entry for the same key.
  EXPECT_FALSE(cache.Put("k", 1, "stale"));
  const auto hit = cache.GetTagged("k", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->text, "fresh");
  // Nor may a born-stale put park dead bytes under a different key once
  // the cache has observed the newer epoch.
  EXPECT_FALSE(cache.Put("other", 1, "stale"));
  EXPECT_FALSE(cache.Get("other", 1).has_value());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, ObserveEpochSweepsAllShardsEagerly) {
  // Large enough to run sharded (>= kShardThreshold), so the sweep must
  // reach every shard, not just the one a lookup happens to land in.
  ResultCache cache(256);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cache.Put("k" + std::to_string(i), 1, "payload"));
  }
  EXPECT_EQ(cache.entries(), 64u);
  EXPECT_GT(cache.text_bytes(), 0u);
  cache.ObserveEpoch(2);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.text_bytes(), 0u);
  EXPECT_EQ(cache.evicted_stale(), 64u);
  // Every shard saw epoch 2, so epoch-1 puts are refused everywhere.
  EXPECT_FALSE(cache.Put("late", 1, "zombie"));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, GetTaggedSharesPayloadBytes) {
  ResultCache cache(4);
  ASSERT_TRUE(cache.Put("k", 1, std::string(1 << 16, 'x')));
  const auto a = cache.GetTagged("k", 1);
  const auto b = cache.GetTagged("k", 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // A hit is a refcount bump on the stored string, never a copy.
  EXPECT_EQ(a->text.get(), b->text.get());
  EXPECT_EQ(a->text->size(), std::size_t{1} << 16);
}

// -------------------------------------------------------------- server --

/// Spins up a server over a small hand-built database on an ephemeral
/// loopback port.
class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options, stream::DeltaStore* delta = nullptr) {
    dir_ = std::make_unique<TempDir>("serve");
    TestDbBuilder builder;
    const auto e1 = builder.AddEvent(100, CountryId{1});
    const auto e2 = builder.AddEvent(200, CountryId{2});
    const auto e3 = builder.AddEvent(300);
    builder.AddMention(e1, 101, "a.com", 90);
    builder.AddMention(e1, 102, "b.com", 40);
    builder.AddMention(e2, 201, "a.com", 80);
    builder.AddMention(e2, 202, "c.com", 70);
    builder.AddMention(e3, 301, "b.com", 30);
    builder.AddMention(e3, 302, "a.com", 95);
    auto db = builder.Build(dir_->path());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<engine::Database>(std::move(*db));
    server_ = std::make_unique<Server>(*db_, delta, options);
    const auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  LineClient Connect() {
    auto client = LineClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static JsonValue Parsed(const std::string& line) {
    auto v = JsonValue::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    return v.ok() ? std::move(*v) : JsonValue();
  }

  static std::string ErrorCodeOf(const JsonValue& response) {
    const auto* error = response.Find("error");
    if (error == nullptr || error->Find("code") == nullptr) return "";
    return error->Find("code")->AsString();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<engine::Database> db_;
  // Declared before server_: the server holds a raw pointer to the delta
  // store and still dereferences it while draining (the shutdown metrics
  // summary reads fetch_stats()), so the store must be destroyed after
  // the server. A test-local DeltaStore used to die before the fixture's
  // server and the drain summary read freed memory — harmlessly while
  // the stats were plain atomics, aborting once they moved behind a
  // mutex.
  std::unique_ptr<stream::DeltaStore> delta_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, AnswersAllQueryKindsIdenticallyToRenderer) {
  StartServer(ServerOptions{});
  auto client = Connect();
  for (const char* kind :
       {"stats", "top-sources", "top-events", "quarterly", "coreport",
        "follow", "country-coreport", "cross-report", "delay", "tone",
        "first-reports"}) {
    const auto response = client.RoundTrip(
        std::string(R"({"id":"t","query":")") + kind + R"(","top":3})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const auto v = Parsed(*response);
    ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
    EXPECT_EQ(v.Find("id")->AsString(), "t");
    EXPECT_EQ(v.Find("query")->AsString(), kind);

    // The acceptance bar: server text == what the CLI renders.
    Request request;
    request.kind = kind;
    request.top_k = 3;
    const auto rendered = RenderQuery(*db_, request);
    ASSERT_TRUE(rendered.ok());
    EXPECT_EQ(v.Find("text")->AsString(), rendered->text) << kind;
  }
}

TEST_F(ServeTest, FilteredQueryMatchesRenderer) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string line =
      R"({"query":"top-sources","top":2,"min_confidence":60})";
  const auto response = client.RoundTrip(line);
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  const auto request = ParseRequest(line);
  ASSERT_TRUE(request.ok());
  const auto rendered = RenderQuery(*db_, *request);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(v.Find("text")->AsString(), rendered->text);
  EXPECT_NE(rendered->text.find("restricted"), std::string::npos);
}

TEST_F(ServeTest, SecondRequestIsServedFromCache) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string line = R"({"query":"top-sources","top":2})";
  const auto first = client.RoundTrip(line);
  ASSERT_TRUE(first.ok());
  const auto v1 = Parsed(*first);
  ASSERT_TRUE(v1.Find("ok")->AsBool());
  EXPECT_FALSE(v1.Find("cached")->AsBool(true));

  // Different spelling, same canonical request -> same entry.
  const auto second =
      client.RoundTrip(R"({ "top": 2, "query": "top-sources" })");
  ASSERT_TRUE(second.ok());
  const auto v2 = Parsed(*second);
  ASSERT_TRUE(v2.Find("ok")->AsBool());
  EXPECT_TRUE(v2.Find("cached")->AsBool(false));
  EXPECT_EQ(v1.Find("text")->AsString(), v2.Find("text")->AsString());

  // The metrics request exposes the hit.
  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  ASSERT_NE(m.Find("metrics"), nullptr);
  EXPECT_GE(m.Find("metrics")->Find("cache_hits")->AsInt(), 1);
  EXPECT_GE(m.Find("metrics")->Find("cache_misses")->AsInt(), 1);
}

TEST_F(ServeTest, IngestBumpsEpochAndInvalidatesCache) {
  delta_ = std::make_unique<stream::DeltaStore>(nullptr);
  StartServer(ServerOptions{}, delta_.get());
  auto client = Connect();
  const std::string line = R"({"query":"stats"})";
  ASSERT_TRUE(client.RoundTrip(line).ok());
  const auto cached = client.RoundTrip(line);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(Parsed(*cached).Find("cached")->AsBool(false));

  // New data lands (directly into the delta store): epoch moves on and
  // the same request recomputes.
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  gen::AppendEventRow(events_csv, dataset.world, dataset.events[0]);
  ASSERT_TRUE(delta_->IngestEventsCsv(events_csv).ok());

  const auto recomputed = client.RoundTrip(line);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(Parsed(*recomputed).Find("cached")->AsBool(true));
}

TEST_F(ServeTest, RenderRacedByIngestIsCachedUnderRenderEpoch) {
  // Regression for the epoch-capture race: HandleQuery used to key the
  // cache Put with the epoch read at request entry. A render that
  // started before an ingest but executed after it was then cached under
  // the pre-ingest epoch — unreachable at best, and wrong (pre-ingest
  // bytes pinned for the new epoch) once renders consume the delta. The
  // fix re-reads the generation from the snapshot acquired at render
  // time, so the entry lands under the epoch of the data it actually saw.
  delta_ = std::make_unique<stream::DeltaStore>(nullptr);
  StartServer(ServerOptions{}, delta_.get());

  // debug_sleep_ms stalls the worker *before* the snapshot is acquired
  // and is not part of the canonical key, so this request shares its
  // cache slot with the plain "stats" query below.
  std::thread slow([this] {
    auto client = Connect();
    const auto response =
        client.RoundTrip(R"({"query":"stats","debug_sleep_ms":600})");
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(Parsed(*response).Find("ok")->AsBool()) << *response;
  });

  // Land an ingest while the render stalls: the epoch captured at the
  // slow request's entry (0) is now one behind.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto cfg = gen::GeneratorConfig::Tiny();
  const auto dataset = gen::GenerateDataset(cfg);
  std::string events_csv;
  gen::AppendEventRow(events_csv, dataset.world, dataset.events[0]);
  ASSERT_TRUE(delta_->IngestEventsCsv(events_csv).ok());
  slow.join();

  // The slow render executed at generation 1, so its result must be
  // servable at the current epoch. Under the entry-epoch bug this lookup
  // missed (the entry sat unreachable under epoch 0).
  auto client = Connect();
  const auto followup = client.RoundTrip(R"({"query":"stats"})");
  ASSERT_TRUE(followup.ok());
  const auto v = Parsed(*followup);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *followup;
  EXPECT_TRUE(v.Find("cached")->AsBool(false)) << *followup;
}

TEST_F(ServeTest, MalformedAndUnknownRequestsAreStructuredErrors) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto bad = client.RoundTrip("this is not json");
  ASSERT_TRUE(bad.ok());
  const auto vb = Parsed(*bad);
  EXPECT_FALSE(vb.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(vb), "bad_request");

  const auto unknown = client.RoundTrip(R"({"id":"u","query":"bogus"})");
  ASSERT_TRUE(unknown.ok());
  const auto vu = Parsed(*unknown);
  EXPECT_FALSE(vu.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(vu), "unknown_query");
  EXPECT_EQ(vu.Find("id")->AsString(), "u");

  // The connection survives errors.
  const auto ok = client.RoundTrip(R"({"query":"stats"})");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(Parsed(*ok).Find("ok")->AsBool());
}

TEST_F(ServeTest, RequestPastDeadlineReturnsTimeout) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto response = client.RoundTrip(
      R"({"query":"stats","top":9,"timeout_ms":1,"debug_sleep_ms":100})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "timeout");
}

TEST_F(ServeTest, MidScanDeadlineAbortsWithinSliceBudget) {
  StartServer(ServerOptions{});
  auto client = Connect();
  // A 100ms budget against a 5s stall: the worker arms the token at
  // dequeue and the (slice-polling) execution path must observe the
  // expiry and answer within roughly deadline + one 100ms poll slice —
  // far below the 5s a deadline-blind server would burn.
  const auto start = std::chrono::steady_clock::now();
  const auto response = client.RoundTrip(
      R"({"query":"stats","timeout_ms":100,"debug_sleep_ms":5000})");
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "timeout");
  EXPECT_LT(wall_ms, 2000.0) << "mid-scan abort took " << wall_ms << "ms";

  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  EXPECT_GE(m.Find("metrics")->Find("cancelled_deadline")->AsInt(), 1);
}

TEST_F(ServeTest, CancelVerbAbortsInFlightRequest) {
  ServerOptions options;
  options.scheduler.workers = 1;
  options.scheduler.threads_per_query = 1;
  options.cache_entries = 0;
  StartServer(options);
  auto victim = Connect();
  auto controller = Connect();
  ASSERT_TRUE(
      victim.Send(R"({"id":"victim","query":"stats","debug_sleep_ms":5000})")
          .ok());
  // Let the worker dequeue it and enter the stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto cancel =
      controller.RoundTrip(R"({"id":"victim","query":"cancel"})");
  ASSERT_TRUE(cancel.ok());
  const auto cv = Parsed(*cancel);
  ASSERT_TRUE(cv.Find("ok")->AsBool()) << *cancel;
  EXPECT_TRUE(cv.Find("cancelled")->AsBool(false));

  const auto aborted = victim.ReadLine();
  ASSERT_TRUE(aborted.ok());
  const auto av = Parsed(*aborted);
  EXPECT_FALSE(av.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(av), "cancelled");

  // Cancelling an id that is not in flight is an idempotent no-op.
  const auto noop = controller.RoundTrip(R"({"id":"ghost","query":"cancel"})");
  ASSERT_TRUE(noop.ok());
  EXPECT_FALSE(Parsed(*noop).Find("cancelled")->AsBool(true));

  const auto metrics = controller.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  EXPECT_GE(m.Find("metrics")->Find("cancelled_router")->AsInt(), 1);
}

TEST_F(ServeTest, CancelVerbRequiresAnId) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto response = client.RoundTrip(R"({"query":"cancel"})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "bad_request");
}

TEST_F(ServeTest, EnvelopeEchoesClampedDeadline) {
  ServerOptions options;
  options.max_timeout_ms = 500;
  StartServer(options);
  auto client = Connect();
  // Asking for far more than the ceiling: the server clamps and says so.
  const auto response =
      client.RoundTrip(R"({"query":"stats","timeout_ms":100000})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  ASSERT_NE(v.Find("deadline_ms"), nullptr);
  EXPECT_EQ(v.Find("deadline_ms")->AsInt(), 500);
}

TEST_F(ServeTest, LateRenderIsCachedAndSalvagesRetry) {
  // Cancellation off: the render is allowed to run past its deadline to
  // completion, which is exactly the case the late-tagged cache exists
  // for — the scan is paid for, so a retry should get it for free.
  ServerOptions options;
  options.cancellation = false;
  StartServer(options);
  auto client = Connect();
  const std::string line =
      R"({"query":"stats","timeout_ms":50,"debug_sleep_ms":300})";
  const auto first = client.RoundTrip(line);
  ASSERT_TRUE(first.ok());
  const auto v1 = Parsed(*first);
  EXPECT_FALSE(v1.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v1), "timeout");

  // Same canonical request again: served from the late-tagged entry.
  const auto second = client.RoundTrip(line);
  ASSERT_TRUE(second.ok());
  const auto v2 = Parsed(*second);
  ASSERT_TRUE(v2.Find("ok")->AsBool()) << *second;
  EXPECT_TRUE(v2.Find("cached")->AsBool(false));

  const auto metrics = client.RoundTrip(R"({"query":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const auto m = Parsed(*metrics);
  EXPECT_GE(m.Find("metrics")->Find("timeouts_salvaged_by_cache")->AsInt(), 1);
}

TEST_F(ServeTest, QueueOverflowReturnsOverloaded) {
  ServerOptions options;
  options.scheduler.workers = 1;
  options.scheduler.threads_per_query = 1;
  options.scheduler.queue_capacity = 1;
  options.cache_entries = 0;  // every request must reach the queue
  StartServer(options);

  // One request occupies the single worker, one fills the queue; the
  // third must be rejected up front.
  auto busy = Connect();
  auto queued = Connect();
  auto rejected = Connect();
  ASSERT_TRUE(
      busy.Send(R"({"id":"busy","query":"stats","debug_sleep_ms":400})")
          .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(
      queued.Send(R"({"id":"queued","query":"stats","debug_sleep_ms":1})")
          .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto response =
      rejected.RoundTrip(R"({"id":"rejected","query":"stats"})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  EXPECT_FALSE(v.Find("ok")->AsBool(true));
  EXPECT_EQ(ErrorCodeOf(v), "overloaded");
  // Shed work carries a backoff hint derived from queue depth and the
  // observed p50 execution time.
  ASSERT_NE(v.Find("error")->Find("retry_after_ms"), nullptr);
  EXPECT_GE(v.Find("error")->Find("retry_after_ms")->AsInt(), 1);

  const auto busy_response = busy.ReadLine();
  ASSERT_TRUE(busy_response.ok());
  EXPECT_TRUE(Parsed(*busy_response).Find("ok")->AsBool());
  const auto queued_response = queued.ReadLine();
  ASSERT_TRUE(queued_response.ok());
  EXPECT_TRUE(Parsed(*queued_response).Find("ok")->AsBool());
}

TEST_F(ServeTest, StopDrainsInFlightRequests) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(
      client.Send(R"({"query":"stats","top":8,"debug_sleep_ms":200})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([this] { server_->Stop(); });
  const auto response = client.ReadLine();
  stopper.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(Parsed(*response).Find("ok")->AsBool()) << *response;
  // After the drain, new requests are refused.
  EXPECT_NE(server_->HandleLine(R"({"query":"stats"})")
                .find("shutting_down"),
            std::string::npos);
}

TEST_F(ServeTest, PingAndConcurrentClients) {
  ServerOptions options;
  options.scheduler.workers = 4;
  options.scheduler.threads_per_query = 1;
  StartServer(options);
  const auto ping = Connect().RoundTrip(R"({"query":"ping"})");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(Parsed(*ping).Find("pong")->AsBool());

  // Hammer from several threads; every response must be well-formed and ok.
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, t, &failures] {
      auto client = Connect();
      for (int i = 0; i < 20; ++i) {
        const auto response = client.RoundTrip(
            StrFormat(R"({"query":"top-sources","top":%d})", 1 + (i % 3)));
        if (!response.ok()) {
          ++failures[t];
          continue;
        }
        const auto v = JsonValue::Parse(*response);
        if (!v.ok() || !v->Find("ok")->AsBool()) ++failures[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "client " << t;
}

// ---------------------------------------------------------- prometheus --

TEST(PromTest, EscapesLabelValues) {
  EXPECT_EQ(PromEscapeLabel("plain"), "plain");
  EXPECT_EQ(PromEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabel("a\nb"), "a\\nb");
  EXPECT_EQ(PromEscapeLabel("q\"\\\n"), "q\\\"\\\\\\n");
}

/// Value of the first exposition line whose name (with labels) is exactly
/// `key`; -1 if no such line exists.
double PromValue(const std::string& text, const std::string& key) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol - pos > key.size() + 1 &&
        text.compare(pos, key.size(), key) == 0 &&
        text[pos + key.size()] == ' ') {
      return std::strtod(text.c_str() + pos + key.size() + 1, nullptr);
    }
    pos = eol + 1;
  }
  return -1.0;
}

/// Unwraps the exposition text from a `metrics_prom` response line.
std::string ScrapeProm(Server& server) {
  const auto v = JsonValue::Parse(server.HandleLine(R"({"query":"metrics_prom"})"));
  EXPECT_TRUE(v.ok());
  EXPECT_TRUE(v->Find("ok")->AsBool());
  return v->Find("text")->AsString();
}

TEST_F(ServeTest, PrometheusExpositionGolden) {
  StartServer(ServerOptions{});
  // Drive traffic: two identical queries (miss then hit) and one error.
  EXPECT_NE(server_->HandleLine(R"({"query":"stats"})").find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server_->HandleLine(R"({"query":"stats"})").find("\"ok\":true"),
            std::string::npos);
  (void)server_->HandleLine(R"({"query":"bogus"})");

  const std::string scrape1 = ScrapeProm(*server_);

  // Every non-comment line is `name[{labels}] value` with a float value;
  // every metric is preceded by a `# TYPE` declaration for its family.
  std::set<std::string> declared;
  std::size_t pos = 0;
  int metric_lines = 0;
  while (pos < scrape1.size()) {
    std::size_t eol = scrape1.find('\n', pos);
    if (eol == std::string::npos) eol = scrape1.size();
    const std::string line = scrape1.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      declared.insert(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    ++metric_lines;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string family = line.substr(0, name_end);
    for (const std::string_view suffix :
         {"_bucket", "_sum", "_count"}) {
      if (family.size() > suffix.size() &&
          family.compare(family.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
          declared.count(family.substr(0, family.size() - suffix.size()))) {
        family = family.substr(0, family.size() - suffix.size());
        break;
      }
    }
    EXPECT_TRUE(declared.count(family)) << "undeclared family: " << line;
    const std::size_t space = line.rfind(' ');
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
    EXPECT_FALSE(std::isnan(value)) << line;
  }
  EXPECT_GT(metric_lines, 20);

  // Spot-check counters against the traffic we generated.
  EXPECT_GE(PromValue(scrape1, "gdelt_requests_total"), 3.0);
  EXPECT_GE(PromValue(scrape1, "gdelt_cache_hits_total"), 1.0);
  EXPECT_GE(PromValue(scrape1, "gdelt_cache_misses_total"), 1.0);
  EXPECT_GE(PromValue(scrape1, "gdelt_unknown_queries_total"), 1.0);
  EXPECT_GE(PromValue(scrape1, "gdelt_workers"), 1.0);

  // Histogram: cumulative `le` buckets, +Inf bucket == _count, and the
  // bucket counts never decrease as `le` grows.
  const std::string bucket_prefix =
      "gdelt_request_latency_seconds_bucket{kind=\"stats\",le=\"";
  double last_le = -1.0;
  double last_count = -1.0;
  double inf_count = -1.0;
  pos = 0;
  while ((pos = scrape1.find(bucket_prefix, pos)) != std::string::npos) {
    const std::size_t le_begin = pos + bucket_prefix.size();
    const std::size_t le_end = scrape1.find('"', le_begin);
    const std::string le = scrape1.substr(le_begin, le_end - le_begin);
    const double count =
        std::strtod(scrape1.c_str() + scrape1.find(' ', le_end) + 1, nullptr);
    if (le == "+Inf") {
      inf_count = count;
    } else {
      const double le_value = std::strtod(le.c_str(), nullptr);
      EXPECT_GT(le_value, last_le) << "le not increasing";
      last_le = le_value;
    }
    EXPECT_GE(count, last_count) << "bucket counts not cumulative at le=" << le;
    last_count = count;
    pos = le_end;
  }
  ASSERT_GE(inf_count, 0.0) << "missing +Inf bucket";
  EXPECT_EQ(inf_count, PromValue(scrape1, "gdelt_request_latency_seconds_count"
                                          "{kind=\"stats\"}"));
  EXPECT_EQ(inf_count, 2.0);  // the two stats queries

  // Counters are monotonic across scrapes.
  EXPECT_NE(server_->HandleLine(R"({"query":"top-sources","top":3})")
                .find("\"ok\":true"),
            std::string::npos);
  const std::string scrape2 = ScrapeProm(*server_);
  for (const char* counter :
       {"gdelt_requests_total", "gdelt_responses_ok_total",
        "gdelt_cache_misses_total", "gdelt_unknown_queries_total"}) {
    EXPECT_GE(PromValue(scrape2, counter), PromValue(scrape1, counter))
        << counter;
  }
  EXPECT_GT(PromValue(scrape2, "gdelt_requests_total"),
            PromValue(scrape1, "gdelt_requests_total"));
}

// --------------------------------------------------------------- trace --

TEST_F(ServeTest, TracedRequestReturnsStageBreakdownSummingToWall) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const auto response = client.RoundTrip(
      R"({"query":"stats","debug_sleep_ms":150,"trace":true})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  const JsonValue* trace_obj = v.Find("trace");
  ASSERT_NE(trace_obj, nullptr) << *response;
  const JsonValue* stages = trace_obj->Find("stages");
  ASSERT_NE(stages, nullptr);

  std::vector<std::string> names;
  double stage_sum_ms = 0;
  for (const auto& stage : stages->elements()) {
    names.push_back(stage.Find("name")->AsString());
    const double ms = stage.Find("ms")->AsNumber(-1);
    EXPECT_GE(ms, 0.0) << names.back();
    stage_sum_ms += ms;
  }
  const std::vector<std::string> expected = {"parse", "cache_lookup",
                                             "queue_wait", "execute",
                                             "cache_put"};
  EXPECT_EQ(names, expected);

  // Acceptance criterion: the stages decompose the reported wall time —
  // their sum lands within 10% of wall_ms (debug_sleep makes it long
  // enough that scheduling noise cannot dominate).
  const double wall_ms = v.Find("wall_ms")->AsNumber();
  EXPECT_GT(wall_ms, 100.0);
  EXPECT_NEAR(stage_sum_ms, wall_ms, wall_ms * 0.10);

  // The span list carries the in-query tree: serve.execute at depth 0.
  const JsonValue* spans = trace_obj->Find("spans");
  ASSERT_NE(spans, nullptr) << *response;
  bool saw_execute = false;
  for (const auto& span : spans->elements()) {
    if (span.Find("name")->AsString() == "serve.execute") {
      saw_execute = true;
      EXPECT_EQ(span.Find("depth")->AsInt(-1), 0);
    }
  }
  EXPECT_TRUE(saw_execute) << *response;

  // An untraced request carries no trace object.
  const auto plain = client.RoundTrip(R"({"query":"top-events","top":2})");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Parsed(*plain).Find("trace"), nullptr);
}

TEST_F(ServeTest, TracedCacheHitReportsLookupStagesOnly) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client.RoundTrip(R"({"query":"quarterly"})").ok());
  const auto response =
      client.RoundTrip(R"({"query":"quarterly","trace":true})");
  ASSERT_TRUE(response.ok());
  const auto v = Parsed(*response);
  ASSERT_TRUE(v.Find("ok")->AsBool()) << *response;
  EXPECT_TRUE(v.Find("cached")->AsBool());
  const JsonValue* trace_obj = v.Find("trace");
  ASSERT_NE(trace_obj, nullptr) << *response;
  std::vector<std::string> names;
  for (const auto& stage : trace_obj->Find("stages")->elements()) {
    names.push_back(stage.Find("name")->AsString());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"parse", "cache_lookup"}));
}

TEST_F(ServeTest, GlobalTracingCapturesNestedOrderedSpans) {
  trace::Reset();
  trace::SetEnabled(true);
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client.RoundTrip(R"({"query":"cross-report"})").ok());
  trace::SetEnabled(false);

  const auto spans = trace::RingSnapshot();
  std::ptrdiff_t execute_idx = -1;
  std::ptrdiff_t kernel_idx = -1;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "serve.execute") {
      execute_idx = static_cast<std::ptrdiff_t>(i);
    }
    if (spans[i].name == "engine.cross_report") {
      kernel_idx = static_cast<std::ptrdiff_t>(i);
    }
  }
  ASSERT_GE(execute_idx, 0) << "serve.execute span missing";
  ASSERT_GE(kernel_idx, 0) << "engine.cross_report span missing";
  const auto& execute = spans[static_cast<std::size_t>(execute_idx)];
  const auto& kernel = spans[static_cast<std::size_t>(kernel_idx)];
  // Children finish (and are recorded) before their parent...
  EXPECT_LT(kernel_idx, execute_idx);
  // ...run on the same worker thread, nested one level down...
  EXPECT_EQ(kernel.tid, execute.tid);
  EXPECT_EQ(execute.depth, 0);
  EXPECT_GE(kernel.depth, 1);
  // ...and sit inside the parent's time window.
  EXPECT_GE(kernel.start_us, execute.start_us);
  EXPECT_LE(kernel.start_us + kernel.dur_us,
            execute.start_us + execute.dur_us + 1);
  // The cross-thread queue-wait stage is mirrored into the ring too.
  bool saw_queue_wait = false;
  for (const auto& span : spans) {
    if (span.name == "serve.queue_wait") saw_queue_wait = true;
  }
  EXPECT_TRUE(saw_queue_wait);

  // Span aggregates surface in the Prometheus exposition.
  const std::string scrape = ScrapeProm(*server_);
  EXPECT_GE(PromValue(scrape,
                      "gdelt_trace_span_total{name=\"serve.execute\"}"),
            1.0);
  EXPECT_GE(PromValue(scrape,
                      "gdelt_trace_span_total{name=\"engine.cross_report\"}"),
            1.0);
  trace::Reset();
}

}  // namespace
}  // namespace gdelt::serve
