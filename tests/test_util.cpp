#include "test_util.hpp"

namespace gdelt::testing {

Status TestDbBuilder::WriteTo(const std::string& dir) {
  namespace ec = convert::events_col;
  namespace mc = convert::mentions_col;

  std::unordered_map<std::uint64_t, std::uint32_t> row_of;
  std::unordered_map<std::uint64_t, std::int64_t> event_time;

  Table events;
  auto& e_gid = events.AddColumn(std::string(ec::kGlobalId), ColumnType::kU64);
  auto& e_int =
      events.AddColumn(std::string(ec::kEventInterval), ColumnType::kI64);
  auto& e_add =
      events.AddColumn(std::string(ec::kAddedInterval), ColumnType::kI64);
  auto& e_cty = events.AddColumn(std::string(ec::kCountry), ColumnType::kU16);
  auto& e_naw =
      events.AddColumn(std::string(ec::kNumArticlesWire), ColumnType::kU32);
  auto& e_gold =
      events.AddColumn(std::string(ec::kGoldstein), ColumnType::kF64);
  auto& e_tone = events.AddColumn(std::string(ec::kAvgTone), ColumnType::kF64);
  auto& e_quad =
      events.AddColumn(std::string(ec::kQuadClass), ColumnType::kU8);
  auto& e_url =
      events.AddColumn(std::string(ec::kSourceUrl), ColumnType::kStr);
  for (const Event& ev : events_) {
    row_of.emplace(ev.global_id, static_cast<std::uint32_t>(e_gid.size()));
    event_time.emplace(ev.global_id, ev.event_interval);
    e_gid.Append<std::uint64_t>(ev.global_id);
    e_int.Append<std::int64_t>(ev.event_interval);
    e_add.Append<std::int64_t>(ev.added_interval);
    e_cty.Append<std::uint16_t>(ev.country);
    e_naw.Append<std::uint32_t>(0);
    e_gold.Append<double>(0.0);
    e_tone.Append<double>(0.0);
    e_quad.Append<std::uint8_t>(1);
    e_url.AppendString(ev.source_url);
  }

  StringDictionary sources;
  Table mentions;
  auto& m_row =
      mentions.AddColumn(std::string(mc::kEventRow), ColumnType::kU32);
  auto& m_gid =
      mentions.AddColumn(std::string(mc::kGlobalEventId), ColumnType::kU64);
  auto& m_eint =
      mentions.AddColumn(std::string(mc::kEventInterval), ColumnType::kI64);
  auto& m_mint = mentions.AddColumn(std::string(mc::kMentionInterval),
                                    ColumnType::kI64);
  auto& m_src =
      mentions.AddColumn(std::string(mc::kSourceId), ColumnType::kU32);
  auto& m_conf =
      mentions.AddColumn(std::string(mc::kConfidence), ColumnType::kU8);
  auto& m_url = mentions.AddColumn(std::string(mc::kUrl), ColumnType::kStr);

  // Mentions sorted by capture interval (the converter's natural order).
  std::vector<const Mention*> ordered;
  ordered.reserve(mentions_.size());
  for (const Mention& m : mentions_) ordered.push_back(&m);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Mention* a, const Mention* b) {
                     return a->mention_interval < b->mention_interval;
                   });
  for (const Mention* m : ordered) {
    const auto row_it = row_of.find(m->event_global_id);
    m_row.Append<std::uint32_t>(row_it == row_of.end()
                                    ? convert::kOrphanEventRow
                                    : row_it->second);
    m_gid.Append<std::uint64_t>(m->event_global_id);
    const auto time_it = event_time.find(m->event_global_id);
    m_eint.Append<std::int64_t>(
        time_it == event_time.end() ? 0 : time_it->second);
    m_mint.Append<std::int64_t>(m->mention_interval);
    m_src.Append<std::uint32_t>(sources.GetOrAdd(m->source));
    m_conf.Append<std::uint8_t>(m->confidence);
    m_url.AppendString("http://" + m->source + "/a");
  }

  GDELT_RETURN_IF_ERROR(events.WriteToFile(
      dir + "/" + std::string(convert::kEventsTableFile)));
  GDELT_RETURN_IF_ERROR(mentions.WriteToFile(
      dir + "/" + std::string(convert::kMentionsTableFile)));
  return sources.WriteToFile(dir + "/" +
                             std::string(convert::kSourcesDictFile));
}

}  // namespace gdelt::testing
